type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create ~seed:(mix64 seed)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int";
  (* rejection-free for our purposes: bound is tiny vs 2^62 *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v *. (1. /. 9007199254740992.)

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0
