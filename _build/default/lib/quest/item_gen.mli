(** Attribute (itemInfo) generators for the paper's workloads. *)

open Cfq_itembase

(** [uniform_prices rng ~n ~lo ~hi] draws one price per item, uniform in
    [[lo, hi]]. *)
val uniform_prices : Splitmix.t -> n:int -> lo:float -> hi:float -> float array

(** [normal_prices rng ~n ~mean ~stddev] draws one price per item, normal,
    clamped at 0 below (prices are non-negative, as required by the induced
    weaker constraints of Section 5.1). *)
val normal_prices : Splitmix.t -> n:int -> mean:float -> stddev:float -> float array

(** [split_prices rng ~n ~split ~low ~high] gives items [0 .. split-1]
    prices drawn by [low] and the rest by [high]; used by the §7.3 workload
    where the [S]-side and [T]-side item pools follow different normals. *)
val split_prices :
  Splitmix.t -> n:int -> split:int -> low:(Splitmix.t -> float) -> high:(Splitmix.t -> float) -> float array

(** [banded_types rng ~prices ~s_lo ~t_hi ~n_types_per_side ~overlap] assigns
    a categorical Type to every item so that the overlap between the type
    sets of the [S]-side items (price ≥ [s_lo]) and of the [T]-side items
    (price ≤ [t_hi]) is controlled:

    - S-side types live in [[0, n)], T-side types in [[n - k, 2n - k)], where
      [n = n_types_per_side] and [k = round (overlap *. n)];
    - items qualifying for both sides (price in [[s_lo, t_hi]]) draw from the
      shared window [[n - k, n)].

    [overlap] must be in (0, 1]; the resulting S/T type-set overlap is
    exactly [k] types out of [n] per side. *)
val banded_types :
  Splitmix.t ->
  prices:float array ->
  s_lo:float ->
  t_hi:float ->
  n_types_per_side:int ->
  overlap:float ->
  float array

(** [price_attr] and [type_attr] are the standard attribute descriptors. *)
val price_attr : Attr.t

val type_attr : Attr.t

(** [item_info ~prices ?types ()] bundles the columns into an
    {!Item_info.t}. *)
val item_info : prices:float array -> ?types:float array -> unit -> Item_info.t

(** [random_taxonomy rng ~n_items ~branching ~depth] builds a complete
    [branching]-ary category tree of the given depth and assigns every item
    a uniformly random leaf category — the substrate for multi-level class
    constraints. *)
val random_taxonomy : Splitmix.t -> n_items:int -> branching:int -> depth:int -> Taxonomy.t
