(** Transaction generator with planted long patterns.

    The §7.3 experiment needs frequent sets of high cardinality (the paper
    reports a largest frequent set of size 14 on the [S] side under a low
    support threshold).  This generator plants explicit patterns: each
    transaction embeds every pattern independently with its own probability
    (keeping a random subset when partially embedded) and pads with noise
    items, so the maximal frequent set sizes are directly controllable. *)

open Cfq_itembase
open Cfq_txdb

type pattern = {
  items : Itemset.t;
  prob : float;  (** probability that a transaction contains the full pattern *)
  partial_prob : float;  (** probability of a partial (random-subset) embedding *)
}

val pattern : ?partial_prob:float -> prob:float -> Itemset.t -> pattern

(** [generate rng ~n_transactions ~universe ~noise_len patterns] builds the
    database.  Noise items are drawn uniformly from [universe] (an item
    range given as [lo, hi) bounds). *)
val generate :
  Splitmix.t ->
  n_transactions:int ->
  universe:int * int ->
  noise_len:float ->
  pattern list ->
  Tx_db.t
