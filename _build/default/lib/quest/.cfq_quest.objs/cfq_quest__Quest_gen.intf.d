lib/quest/quest_gen.mli: Cfq_itembase Cfq_txdb Itemset Splitmix Tx_db
