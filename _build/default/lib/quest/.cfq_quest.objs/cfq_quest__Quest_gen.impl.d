lib/quest/quest_gen.ml: Array Cfq_itembase Cfq_txdb Dist Float Hashtbl Itemset Splitmix Tx_db
