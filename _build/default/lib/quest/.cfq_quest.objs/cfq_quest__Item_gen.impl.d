lib/quest/item_gen.ml: Array Attr Cfq_itembase Dist Float Item_info Splitmix Taxonomy
