lib/quest/splitmix.ml: Int64
