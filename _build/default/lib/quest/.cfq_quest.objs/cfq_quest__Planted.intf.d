lib/quest/planted.mli: Cfq_itembase Cfq_txdb Itemset Splitmix Tx_db
