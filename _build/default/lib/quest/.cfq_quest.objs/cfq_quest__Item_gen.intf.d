lib/quest/item_gen.mli: Attr Cfq_itembase Item_info Splitmix Taxonomy
