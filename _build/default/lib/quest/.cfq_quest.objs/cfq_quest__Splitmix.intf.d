lib/quest/splitmix.mli:
