lib/quest/dist.mli: Splitmix
