lib/quest/dist.ml: Array Float Hashtbl Splitmix
