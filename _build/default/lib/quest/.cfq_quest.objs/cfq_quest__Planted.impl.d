lib/quest/planted.ml: Array Cfq_itembase Cfq_txdb Dist Hashtbl Itemset List Splitmix Tx_db
