open Cfq_itembase

let uniform_prices rng ~n ~lo ~hi = Array.init n (fun _ -> Dist.uniform rng ~lo ~hi)

let normal_prices rng ~n ~mean ~stddev =
  Array.init n (fun _ -> Float.max 0. (Dist.normal rng ~mean ~stddev))

let split_prices rng ~n ~split ~low ~high =
  Array.init n (fun i -> if i < split then low rng else high rng)

let banded_types rng ~prices ~s_lo ~t_hi ~n_types_per_side ~overlap =
  if overlap <= 0. || overlap > 1. then invalid_arg "Item_gen.banded_types: overlap";
  let n = n_types_per_side in
  let k = max 1 (int_of_float (Float.round (overlap *. float_of_int n))) in
  let draw lo width = float_of_int (lo + Splitmix.int rng width) in
  Array.map
    (fun price ->
      let s_side = price >= s_lo and t_side = price <= t_hi in
      if s_side && t_side then draw (n - k) k
      else if s_side then draw 0 n
      else if t_side then draw (n - k) n
      else draw 0 (2 * n))
    prices

let price_attr = Attr.make "Price" Attr.Numeric
let type_attr = Attr.make "Type" Attr.Categorical

let item_info ~prices ?types () =
  let info = Item_info.create ~universe_size:(Array.length prices) in
  Item_info.add_column info price_attr prices;
  (match types with
  | Some t -> Item_info.add_column info type_attr t
  | None -> ());
  info

let random_taxonomy rng ~n_items ~branching ~depth =
  if branching < 1 || depth < 1 then invalid_arg "Item_gen.random_taxonomy";
  (* a complete tree laid out level by level: node 0 is the root *)
  let level_start = Array.make (depth + 1) 0 in
  let total = ref 0 in
  let width = ref 1 in
  for l = 0 to depth - 1 do
    level_start.(l) <- !total;
    total := !total + !width;
    width := !width * branching
  done;
  level_start.(depth) <- !total;
  let parent =
    Array.init !total (fun c ->
        if c = 0 then -1
        else begin
          (* locate c's level, then its parent one level up *)
          let l = ref 1 in
          while c >= level_start.(!l + 1) do
            incr l
          done;
          level_start.(!l - 1) + ((c - level_start.(!l)) / branching)
        end)
  in
  let leaves = level_start.(depth) - level_start.(depth - 1) in
  let item_category =
    Array.init n_items (fun _ -> level_start.(depth - 1) + Splitmix.int rng leaves)
  in
  Taxonomy.make ~parent ~item_category
