(** SplitMix64 pseudo-random number generator.

    A small, fast, deterministic PRNG (Steele, Lea & Flood 2014) so that
    every generated database is reproducible from its seed across runs and
    platforms, independent of the stdlib [Random] implementation. *)

type t

val create : seed:int64 -> t

(** An independent stream split off the current state. *)
val split : t -> t

(** Uniform over all 64-bit values. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound), [bound > 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool
