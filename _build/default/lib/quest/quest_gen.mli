(** IBM Quest / Agrawal–Srikant synthetic transaction generator.

    Re-implementation of the generator of "Fast Algorithms for Mining
    Association Rules" (VLDB'94), which the paper used (via the IBM Almaden
    program) to produce its experimental databases: a table of potentially
    large itemsets with exponentially distributed weights is built first, and
    transactions are then assembled from (possibly corrupted) patterns drawn
    from that table. *)

open Cfq_itembase
open Cfq_txdb

type params = {
  n_items : int;  (** N, size of the item universe (paper: 1000) *)
  n_transactions : int;  (** |D| (paper: 100,000) *)
  avg_tx_len : float;  (** |T|, mean transaction size (Poisson) *)
  avg_pattern_len : float;  (** |I|, mean potentially-large itemset size *)
  n_patterns : int;  (** |L|, number of potentially large itemsets *)
  correlation : float;  (** fraction of a pattern inherited from the previous one *)
  corruption_mean : float;  (** mean per-pattern corruption level *)
  corruption_stddev : float;
}

(** Paper-scale defaults: 100k transactions over 1000 items,
    [|T|=10], [|I|=4], [|L|=2000]. *)
val default_params : params

(** [scaled n] is [default_params] with [n_transactions = n] and [n_patterns]
    scaled proportionally (minimum 50), for fast test/bench runs. *)
val scaled : int -> params

(** [patterns rng p] builds the potentially-large-itemset table:
    [(itemset, cumulative_weight, corruption)] rows. *)
val patterns : Splitmix.t -> params -> (Itemset.t * float) array

(** [generate rng p] produces the transaction database. *)
val generate : Splitmix.t -> params -> Tx_db.t

(** [generate_itemsets rng p] is the raw itemset array behind {!generate}. *)
val generate_itemsets : Splitmix.t -> params -> Itemset.t array
