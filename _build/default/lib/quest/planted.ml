open Cfq_itembase
open Cfq_txdb

type pattern = {
  items : Itemset.t;
  prob : float;
  partial_prob : float;
}

let pattern ?(partial_prob = 0.) ~prob items = { items; prob; partial_prob }

let generate rng ~n_transactions ~universe:(lo, hi) ~noise_len patterns =
  if hi <= lo then invalid_arg "Planted.generate: empty universe";
  let txs =
    Array.init n_transactions (fun _ ->
        let acc = Hashtbl.create 16 in
        List.iter
          (fun p ->
            let u = Splitmix.float rng in
            if u < p.prob then Itemset.iter (fun e -> Hashtbl.replace acc e ()) p.items
            else if u < p.prob +. p.partial_prob then begin
              (* embed a uniformly sized random subset *)
              let arr = Itemset.to_array p.items in
              let k = Splitmix.int rng (Array.length arr + 1) in
              let idx = Dist.sample_without_replacement rng ~n:(Array.length arr) ~k in
              Array.iter (fun j -> Hashtbl.replace acc arr.(j) ()) idx
            end)
          patterns;
        let n_noise = Dist.poisson rng ~mean:noise_len in
        for _ = 1 to n_noise do
          Hashtbl.replace acc (lo + Splitmix.int rng (hi - lo)) ()
        done;
        if Hashtbl.length acc = 0 then Hashtbl.replace acc (lo + Splitmix.int rng (hi - lo)) ();
        Itemset.of_list (Hashtbl.fold (fun e () l -> e :: l) acc []))
  in
  Tx_db.create txs
