let uniform rng ~lo ~hi = lo +. (Splitmix.float rng *. (hi -. lo))

let std_normal rng =
  (* Box–Muller; guard against log 0 *)
  let u1 = Float.max 1e-300 (Splitmix.float rng) in
  let u2 = Splitmix.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let normal rng ~mean ~stddev = mean +. (stddev *. std_normal rng)

let normal_clamped rng ~mean ~stddev ~lo ~hi =
  Float.min hi (Float.max lo (normal rng ~mean ~stddev))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson";
  let l = exp (-.mean) in
  let rec loop k p =
    let p = p *. Splitmix.float rng in
    if p <= l then k else loop (k + 1) p
  in
  loop 0 1.

let exponential rng ~mean =
  let u = Float.max 1e-300 (Splitmix.float rng) in
  -.mean *. log u

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric";
  let u = Float.max 1e-300 (Splitmix.float rng) in
  int_of_float (Float.floor (log u /. log (1. -. p)))

let pick_weighted rng cumulative =
  let n = Array.length cumulative in
  if n = 0 then invalid_arg "Dist.pick_weighted";
  let total = cumulative.(n - 1) in
  let x = Splitmix.float rng *. total in
  (* binary search for first index with cumulative.(i) > x *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let sample_without_replacement rng ~n ~k =
  if k > n || k < 0 then invalid_arg "Dist.sample_without_replacement";
  (* Floyd's algorithm *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let t = Splitmix.int rng (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  let out = Array.make k 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if Hashtbl.mem chosen i then begin
      out.(!w) <- i;
      incr w
    end
  done;
  out

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
