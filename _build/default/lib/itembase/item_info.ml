type t = {
  universe_size : int;
  columns : (string, Attr.t * float array) Hashtbl.t;
}

let create ~universe_size = { universe_size; columns = Hashtbl.create 8 }
let universe_size t = t.universe_size

let add_column t attr values =
  if Array.length values <> t.universe_size then
    invalid_arg "Item_info.add_column: column size mismatch";
  if Attr.is_self attr then invalid_arg "Item_info.add_column: reserved name";
  if Hashtbl.mem t.columns attr.Attr.name then
    invalid_arg ("Item_info.add_column: duplicate attribute " ^ attr.Attr.name);
  Hashtbl.replace t.columns attr.Attr.name (attr, values)

let attrs t =
  Hashtbl.fold (fun _ (attr, _) acc -> attr :: acc) t.columns []
  |> List.sort (fun a b -> String.compare a.Attr.name b.Attr.name)

let find_attr t name =
  if String.equal name Attr.self.Attr.name then Some Attr.self
  else
    match Hashtbl.find_opt t.columns name with
    | Some (attr, _) -> Some attr
    | None -> None

let value t attr item =
  if Attr.is_self attr then float_of_int item
  else
    match Hashtbl.find_opt t.columns attr.Attr.name with
    | Some (_, col) -> col.(item)
    | None -> raise Not_found

let project t attr s =
  Itemset.fold (fun acc e -> Value_set.union acc (Value_set.singleton (value t attr e))) Value_set.empty s

let min_of t attr s =
  Itemset.fold
    (fun acc e ->
      let v = value t attr e in
      match acc with
      | None -> Some v
      | Some m -> Some (Float.min m v))
    None s

let max_of t attr s =
  Itemset.fold
    (fun acc e ->
      let v = value t attr e in
      match acc with
      | None -> Some v
      | Some m -> Some (Float.max m v))
    None s

let sum_of t attr s = Itemset.fold (fun acc e -> acc +. value t attr e) 0. s

let avg_of t attr s =
  let n = Itemset.cardinal s in
  if n = 0 then None else Some (sum_of t attr s /. float_of_int n)

let count_distinct t attr s = Value_set.cardinal (project t attr s)
