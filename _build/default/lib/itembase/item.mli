(** Items of the active domain.

    An item is a small non-negative integer identifier into the item universe
    [0 .. universe_size - 1].  All attribute tables ({!Item_info}) and
    transaction databases are indexed by these identifiers. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** [to_string i] is the canonical textual form ["i<n>"]. *)
val to_string : t -> string
