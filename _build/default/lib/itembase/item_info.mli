(** The auxiliary item relation [itemInfo(Item, A1, A2, ...)].

    Stores one value per (attribute, item) pair.  Numeric attributes hold
    arbitrary floats; categorical attributes hold values that are compared
    for equality only (encoded as floats, typically small integers).  The
    identity pseudo-attribute {!Attr.self} is always available and maps each
    item to its own identifier. *)

type t

(** [create ~universe_size] makes an empty table for items
    [0 .. universe_size - 1]. *)
val create : universe_size:int -> t

val universe_size : t -> int

(** [add_column t attr values] registers attribute [attr] with per-item
    [values]; [Array.length values] must equal [universe_size t].
    Raises [Invalid_argument] on size mismatch or duplicate name. *)
val add_column : t -> Attr.t -> float array -> unit

(** [attrs t] lists the registered attributes (excluding {!Attr.self}). *)
val attrs : t -> Attr.t list

(** [find_attr t name] looks an attribute up by name; also resolves
    ["Item"] to {!Attr.self}. *)
val find_attr : t -> string -> Attr.t option

(** [value t attr item] is the attribute value of [item].
    Raises [Not_found] if [attr] was never registered. *)
val value : t -> Attr.t -> Item.t -> float

(** [project t attr s] is the value set [s.attr = { attr(e) | e ∈ s }]. *)
val project : t -> Attr.t -> Itemset.t -> Value_set.t

(** {1 Aggregates over itemsets}

    All of these view the itemset as a multiset of attribute values — i.e.
    [sum]/[avg] count each item's value once even when two items share a
    value, matching SQL aggregate semantics over the join of [S] with
    [itemInfo]. *)

val min_of : t -> Attr.t -> Itemset.t -> float option
val max_of : t -> Attr.t -> Itemset.t -> float option
val sum_of : t -> Attr.t -> Itemset.t -> float
val avg_of : t -> Attr.t -> Itemset.t -> float option

(** [count_distinct t attr s] is [|s.attr|], the number of distinct
    attribute values, as used by constraints like [count(S.Type) = 1]. *)
val count_distinct : t -> Attr.t -> Itemset.t -> int
