type t = Item.t array

let empty = [||]
let singleton i = [| i |]

let check_sorted a =
  let n = Array.length a in
  let rec loop i =
    if i >= n then true
    else if a.(i - 1) < a.(i) then loop (i + 1)
    else false
  in
  loop 1

let of_sorted_array a =
  if not (check_sorted a) then
    invalid_arg "Itemset.of_sorted_array: not strictly increasing";
  a

let of_array a =
  let b = Array.copy a in
  Array.sort Item.compare b;
  let n = Array.length b in
  if n = 0 then b
  else begin
    (* dedupe in place, then trim *)
    let w = ref 1 in
    for r = 1 to n - 1 do
      if b.(r) <> b.(!w - 1) then begin
        b.(!w) <- b.(r);
        incr w
      end
    done;
    if !w = n then b else Array.sub b 0 !w
  end

let of_list l = of_array (Array.of_list l)
let to_list = Array.to_list
let to_array = Array.copy
let unsafe_to_array s = s

let cardinal = Array.length
let is_empty s = Array.length s = 0

let mem i s =
  (* binary search *)
  let lo = ref 0 and hi = ref (Array.length s - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = s.(mid) in
    if v = i then found := true
    else if v < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let get s i = s.(i)
let min_item s = if is_empty s then None else Some s.(0)
let max_item s = if is_empty s then None else Some s.(Array.length s - 1)

let iter = Array.iter
let fold f acc s = Array.fold_left f acc s
let for_all = Array.for_all
let exists = Array.exists
let filter p s = Array.of_seq (Seq.filter p (Array.to_seq s))

let count p s =
  Array.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 s

let add i s =
  if mem i s then s
  else begin
    let n = Array.length s in
    let out = Array.make (n + 1) i in
    let rec place r w =
      if r >= n then ()
      else if s.(r) < i then begin
        out.(w) <- s.(r);
        place (r + 1) (w + 1)
      end
      else begin
        (* out.(w) already holds [i]; shift the rest one right *)
        Array.blit s r out (w + 1) (n - r)
      end
    in
    place 0 0;
    out
  end

let remove i s =
  if not (mem i s) then s
  else filter (fun j -> j <> i) s

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let rec loop ia ib w =
    if ia >= na then begin
      Array.blit b ib out w (nb - ib);
      w + (nb - ib)
    end
    else if ib >= nb then begin
      Array.blit a ia out w (na - ia);
      w + (na - ia)
    end
    else
      let x = a.(ia) and y = b.(ib) in
      if x < y then begin
        out.(w) <- x;
        loop (ia + 1) ib (w + 1)
      end
      else if y < x then begin
        out.(w) <- y;
        loop ia (ib + 1) (w + 1)
      end
      else begin
        out.(w) <- x;
        loop (ia + 1) (ib + 1) (w + 1)
      end
  in
  let n = loop 0 0 0 in
  if n = na + nb then out else Array.sub out 0 n

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec loop ia ib w =
    if ia >= na || ib >= nb then w
    else
      let x = a.(ia) and y = b.(ib) in
      if x < y then loop (ia + 1) ib w
      else if y < x then loop ia (ib + 1) w
      else begin
        out.(w) <- x;
        loop (ia + 1) (ib + 1) (w + 1)
      end
  in
  let n = loop 0 0 0 in
  if n = Array.length out then out else Array.sub out 0 n

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let rec loop ia ib w =
    if ia >= na then w
    else if ib >= nb then begin
      Array.blit a ia out w (na - ia);
      w + (na - ia)
    end
    else
      let x = a.(ia) and y = b.(ib) in
      if x < y then begin
        out.(w) <- x;
        loop (ia + 1) ib (w + 1)
      end
      else if y < x then loop ia (ib + 1) w
      else loop (ia + 1) (ib + 1) w
  in
  let n = loop 0 0 0 in
  if n = na then out else Array.sub out 0 n

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else
    let rec loop ia ib =
      if ia >= na then true
      else if ib >= nb then false
      else
        let x = a.(ia) and y = b.(ib) in
        if x = y then loop (ia + 1) (ib + 1)
        else if x > y then loop ia (ib + 1)
        else false
    in
    loop 0 0

let subset_of_array = subset

let disjoint a b =
  let na = Array.length a and nb = Array.length b in
  let rec loop ia ib =
    if ia >= na || ib >= nb then true
    else
      let x = a.(ia) and y = b.(ib) in
      if x = y then false else if x < y then loop (ia + 1) ib else loop ia (ib + 1)
  in
  loop 0 0

let equal a b =
  let na = Array.length a in
  na = Array.length b
  &&
  let rec loop i = i >= na || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

let compare a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Int.compare na nb
  else
    let rec loop i =
      if i >= na then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash s =
  (* FNV-1a style over the items *)
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun i ->
      h := !h lxor i;
      h := !h * 0x01000193 land max_int)
    s;
  !h

let prefix_join a b =
  let k = Array.length a in
  if k = 0 || Array.length b <> k then None
  else
    let rec shared i = i >= k - 1 || (a.(i) = b.(i) && shared (i + 1)) in
    if shared 0 && a.(k - 1) < b.(k - 1) then begin
      let out = Array.make (k + 1) b.(k - 1) in
      Array.blit a 0 out 0 k;
      Some out
    end
    else None

let iter_subsets_k s k f =
  let n = Array.length s in
  if k = 0 then f empty
  else if k <= n then begin
    let idx = Array.init k (fun i -> i) in
    let emit () = f (Array.map (fun i -> s.(i)) idx) in
    let rec next () =
      emit ();
      (* advance the combination counter *)
      let rec bump p =
        if p < 0 then false
        else if idx.(p) < n - (k - p) then begin
          idx.(p) <- idx.(p) + 1;
          for q = p + 1 to k - 1 do
            idx.(q) <- idx.(q - 1) + 1
          done;
          true
        end
        else bump (p - 1)
      in
      if bump (k - 1) then next ()
    in
    next ()
  end

let iter_delete_one s f =
  let n = Array.length s in
  for d = 0 to n - 1 do
    let out = Array.make (n - 1) 0 in
    Array.blit s 0 out 0 d;
    Array.blit s (d + 1) out d (n - 1 - d);
    f out
  done

let powerset s f =
  let n = Array.length s in
  if n > 20 then invalid_arg "Itemset.powerset: set too large";
  for mask = 0 to (1 lsl n) - 1 do
    let size = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr size
    done;
    let out = Array.make !size 0 in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        out.(!w) <- s.(i);
        incr w
      end
    done;
    f out
  done

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Item.pp)
    s

let to_string s = Format.asprintf "%a" pp s

module T = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Hashtbl = Hashtbl.Make (T)
module Set = Set.Make (T)
module Map = Map.Make (T)
