type kind =
  | Numeric
  | Categorical

type t = {
  name : string;
  kind : kind;
}

let make name kind = { name; kind }
let self = { name = "Item"; kind = Categorical }
let is_self a = String.equal a.name "Item"
let equal a b = String.equal a.name b.name && a.kind = b.kind
let pp ppf a = Format.pp_print_string ppf a.name

let pp_kind ppf = function
  | Numeric -> Format.pp_print_string ppf "numeric"
  | Categorical -> Format.pp_print_string ppf "categorical"
