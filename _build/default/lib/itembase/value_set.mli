(** Finite sets of attribute values.

    Constraint semantics in the CFQ language manipulate *value sets* such as
    [S.Type] (the set of Type values of the items in [S]).  Values are either
    numeric (prices, amounts) or categorical (type identifiers); both are
    encoded as floats internally, with categorical values being exact small
    integers, so a single representation serves the whole constraint
    language. *)

type t

val empty : t
val of_list : float list -> t
val to_list : t -> float list
val singleton : float -> t

val cardinal : t -> int
val is_empty : t -> bool
val mem : float -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal : t -> t -> bool

val min_value : t -> float option
val max_value : t -> float option
val sum : t -> float
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val exists : (float -> bool) -> t -> bool
val for_all : (float -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit
