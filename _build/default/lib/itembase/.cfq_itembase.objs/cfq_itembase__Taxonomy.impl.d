lib/itembase/taxonomy.ml: Array Attr Item_info List
