lib/itembase/itemset.ml: Array Format Hashtbl Int Item Map Seq Set
