lib/itembase/item.ml: Format Int
