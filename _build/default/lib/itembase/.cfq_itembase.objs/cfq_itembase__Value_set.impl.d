lib/itembase/value_set.ml: Float Format Set
