lib/itembase/bitvec.ml: Array Itemset
