lib/itembase/item_info.ml: Array Attr Float Hashtbl Itemset List String Value_set
