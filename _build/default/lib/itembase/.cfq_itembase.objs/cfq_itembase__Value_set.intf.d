lib/itembase/value_set.mli: Format
