lib/itembase/attr.mli: Format
