lib/itembase/attr.ml: Format String
