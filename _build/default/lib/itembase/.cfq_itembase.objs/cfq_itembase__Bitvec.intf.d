lib/itembase/bitvec.mli: Format Item Itemset
