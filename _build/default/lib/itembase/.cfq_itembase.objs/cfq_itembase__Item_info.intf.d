lib/itembase/item_info.mli: Attr Item Itemset Value_set
