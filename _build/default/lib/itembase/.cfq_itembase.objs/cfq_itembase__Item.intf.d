lib/itembase/item.mli: Format
