lib/itembase/taxonomy.mli: Item Item_info
