lib/itembase/itemset.mli: Format Hashtbl Item Map Set
