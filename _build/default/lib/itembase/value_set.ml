module FSet = Set.Make (Float)

type t = FSet.t

let empty = FSet.empty
let of_list = FSet.of_list
let to_list = FSet.elements
let singleton = FSet.singleton

let cardinal = FSet.cardinal
let is_empty = FSet.is_empty
let mem = FSet.mem

let union = FSet.union
let inter = FSet.inter
let diff = FSet.diff
let subset = FSet.subset
let disjoint = FSet.disjoint
let equal = FSet.equal

let min_value s = FSet.min_elt_opt s
let max_value s = FSet.max_elt_opt s
let sum s = FSet.fold (fun v acc -> acc +. v) s 0.
let fold f acc s = FSet.fold (fun v acc -> f acc v) s acc
let exists = FSet.exists
let for_all = FSet.for_all

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (to_list s)
