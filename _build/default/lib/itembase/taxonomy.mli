(** Item taxonomies for class constraints.

    The CFQ language includes "class constraints" (Section 1); with a
    concept hierarchy over the items (cf. multi-level association mining,
    reference [8] of the paper) a class is a node of the taxonomy and a
    constraint like "all of [S] under {\i Beverages}" becomes a domain
    constraint over a materialised ancestor attribute.

    A taxonomy is a forest of categories plus a leaf category per item.
    {!add_columns} materialises one categorical column per depth
    ([<prefix>1] = the root-level ancestor, [<prefix>2] the next level, ...,
    clamped at the leaf), after which the ordinary constraint language and
    all pruning machinery apply unchanged:

    {v  S.Cat1 = {2} & T.Cat2 subset {7, 8}  v} *)

type t

(** [make ~parent ~item_category] with [parent.(c)] the parent category of
    [c] (or [-1] for roots) and [item_category.(i)] the leaf category of
    item [i].  Raises [Invalid_argument] on out-of-range references or
    cycles. *)
val make : parent:int array -> item_category:int array -> t

val n_categories : t -> int
val n_items : t -> int

(** [ancestors t c] lists [c] and its ancestors, root last. *)
val ancestors : t -> int -> int list

(** [path_from_root t c] is the same path, root first. *)
val path_from_root : t -> int -> int list

(** [is_under t ~category item]: does [item]'s ancestry contain
    [category]? *)
val is_under : t -> category:int -> Item.t -> bool

(** Depth of the deepest leaf (roots have depth 1). *)
val depth : t -> int

(** [level_column t ~level] gives, per item, its ancestor at [level]
    (1 = root level); items whose path is shorter keep their leaf
    category. *)
val level_column : t -> level:int -> float array

(** [add_columns t info ~prefix] registers [<prefix>1 .. <prefix>depth]
    categorical columns on [info]. *)
val add_columns : t -> Item_info.t -> prefix:string -> unit
