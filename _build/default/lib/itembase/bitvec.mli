(** Fixed-universe bit vectors.

    A dense alternative to {!Itemset} for hot inner loops over a known item
    universe: membership, intersection and subset tests are word-parallel.
    Conversions to and from {!Itemset} are provided; the levelwise engines
    keep the sorted-array representation (whose iteration order they need),
    while bit vectors serve as transaction masks and scratch sets. *)

type t

(** [create ~universe_size] is the empty set over [0 .. universe_size-1]. *)
val create : universe_size:int -> t

val universe_size : t -> int

val of_itemset : universe_size:int -> Itemset.t -> t
val to_itemset : t -> Itemset.t

(** [add t i] / [remove t i] mutate in place.
    Raises [Invalid_argument] out of range. *)
val add : t -> Item.t -> unit

val remove : t -> Item.t -> unit
val mem : t -> Item.t -> bool

(** Population count. *)
val cardinal : t -> int

val is_empty : t -> bool

(** Binary operations allocate a fresh vector; both arguments must share a
    universe size. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal : t -> t -> bool

(** [inter_cardinal a b] = [cardinal (inter a b)] without allocating. *)
val inter_cardinal : t -> t -> int

val copy : t -> t
val iter : (Item.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
