(** Item attributes.

    An attribute names a column of the auxiliary relation
    [itemInfo(Item, A1, A2, ...)].  Attributes are either {e numeric}
    (aggregable with min/max/sum/avg) or {e categorical} (usable in domain
    constraints such as [S.Type ⊆ V]).  The special attribute {!self} denotes
    the item identity itself, so that constraints such as [S ⊆ V] or
    [S ∩ T = ∅] fall out of the same machinery. *)

type kind =
  | Numeric
  | Categorical

type t = {
  name : string;
  kind : kind;
}

val make : string -> kind -> t

(** The identity pseudo-attribute: [A(item) = item id], categorical. *)
val self : t

val is_self : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
