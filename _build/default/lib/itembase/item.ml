type t = int

let compare = Int.compare
let equal = Int.equal
let hash i = i

let pp ppf i = Format.fprintf ppf "i%d" i
let to_string i = "i" ^ string_of_int i
