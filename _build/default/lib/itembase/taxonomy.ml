type t = {
  parent : int array;
  item_category : int array;
  (* root-first path per category, precomputed *)
  paths : int list array;
}

let make ~parent ~item_category =
  let m = Array.length parent in
  Array.iter
    (fun p -> if p <> -1 && (p < 0 || p >= m) then invalid_arg "Taxonomy.make: bad parent")
    parent;
  Array.iter
    (fun c -> if c < 0 || c >= m then invalid_arg "Taxonomy.make: bad item category")
    item_category;
  let paths = Array.make m [] in
  let rec path_of seen c =
    if List.mem c seen then invalid_arg "Taxonomy.make: cycle";
    match paths.(c) with
    | _ :: _ as p -> p
    | [] ->
        let p =
          if parent.(c) = -1 then [ c ] else path_of (c :: seen) parent.(c) @ [ c ]
        in
        paths.(c) <- p;
        p
  in
  for c = 0 to m - 1 do
    ignore (path_of [] c)
  done;
  { parent; item_category; paths }

let n_categories t = Array.length t.parent
let n_items t = Array.length t.item_category

let path_from_root t c =
  if c < 0 || c >= Array.length t.parent then invalid_arg "Taxonomy.path_from_root";
  t.paths.(c)

let ancestors t c = List.rev (path_from_root t c)

let is_under t ~category item =
  if item < 0 || item >= Array.length t.item_category then
    invalid_arg "Taxonomy.is_under";
  List.mem category t.paths.(t.item_category.(item))

let depth t =
  Array.fold_left
    (fun acc leaf -> max acc (List.length t.paths.(leaf)))
    1 t.item_category

let level_column t ~level =
  if level < 1 then invalid_arg "Taxonomy.level_column";
  Array.map
    (fun leaf ->
      let path = t.paths.(leaf) in
      let n = List.length path in
      float_of_int (List.nth path (min level n - 1)))
    t.item_category

let add_columns t info ~prefix =
  for level = 1 to depth t do
    Item_info.add_column info
      (Attr.make (prefix ^ string_of_int level) Attr.Categorical)
      (level_column t ~level)
  done
