(** Immutable itemsets, stored as strictly increasing arrays of items.

    This is the workhorse representation of the whole system: candidates,
    frequent sets, transactions and constraint solution sets are all values
    of this type.  All operations preserve the sorted-strict invariant, and
    [of_array]/[of_list] normalise their input (sort + dedupe). *)

type t

(** {1 Construction} *)

val empty : t
val singleton : Item.t -> t

(** [of_sorted_array a] adopts [a], which must be strictly increasing.
    Raises [Invalid_argument] otherwise.  O(n) check. *)
val of_sorted_array : Item.t array -> t

(** [of_array a] sorts and dedupes a copy of [a]. *)
val of_array : Item.t array -> t

val of_list : Item.t list -> t
val to_list : t -> Item.t list
val to_array : t -> Item.t array

(** [unsafe_to_array s] exposes the underlying array without copying; the
    caller must not mutate it.  For hot counting loops. *)
val unsafe_to_array : t -> Item.t array

(** {1 Observation} *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : Item.t -> t -> bool

(** [get s i] is the [i]-th smallest item of [s]. *)
val get : t -> int -> Item.t

val min_item : t -> Item.t option
val max_item : t -> Item.t option

val iter : (Item.t -> unit) -> t -> unit
val fold : ('a -> Item.t -> 'a) -> 'a -> t -> 'a
val for_all : (Item.t -> bool) -> t -> bool
val exists : (Item.t -> bool) -> t -> bool
val filter : (Item.t -> bool) -> t -> t
val count : (Item.t -> bool) -> t -> int

(** {1 Set algebra} *)

val add : Item.t -> t -> t
val remove : Item.t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool

(** [subset_of_array sub tx] tests [sub ⊆ tx] where [tx] is a strictly
    increasing raw array (a transaction).  Used on the hot counting path. *)
val subset_of_array : t -> Item.t array -> bool

(** {1 Ordering, hashing} *)

val equal : t -> t -> bool

(** Total order: by cardinality, then lexicographically.  Within a level of
    the lattice this is the usual lexicographic candidate order. *)
val compare : t -> t -> int

val hash : t -> int

(** {1 Levelwise helpers} *)

(** [prefix_join a b] is the Apriori join: if [a] and [b] have the same size
    [k], share their first [k-1] items and [last a < last b], the size-[k+1]
    union, else [None]. *)
val prefix_join : t -> t -> t option

(** [iter_subsets_k s k f] applies [f] to every size-[k] subset of [s], in
    lexicographic order.  Subsets share no structure with [s]. *)
val iter_subsets_k : t -> int -> (t -> unit) -> unit

(** [iter_delete_one s f] applies [f] to each of the [cardinal s] subsets
    obtained by deleting exactly one item. *)
val iter_delete_one : t -> (t -> unit) -> unit

(** [powerset s f] applies [f] to all [2^n] subsets of [s] (small sets only;
    raises [Invalid_argument] above 20 items). *)
val powerset : t -> (t -> unit) -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Hashtbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
