open Cfq_itembase

let pairs_all items =
  let n = Array.length items in
  let sorted = Array.copy items in
  Array.sort Item.compare sorted;
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out := Itemset.of_sorted_array [| sorted.(i); sorted.(j) |] :: !out
    done
  done;
  Array.of_list !out

let pairs_with_witness ~witnesses ~items =
  let seen = Itemset.Hashtbl.create 256 in
  Array.iter
    (fun w ->
      Array.iter
        (fun x ->
          if x <> w then begin
            let pair = Itemset.of_array [| w; x |] in
            if not (Itemset.Hashtbl.mem seen pair) then Itemset.Hashtbl.replace seen pair ()
          end)
        items)
    witnesses;
  Array.of_seq (Itemset.Hashtbl.to_seq_keys seen)

let all_level_subsets_ok candidate ~check =
  let ok = ref true in
  Itemset.iter_delete_one candidate (fun sub -> if !ok && not (check sub) then ok := false);
  !ok

let apriori_gen ~prev ~prev_mem =
  let prev = Array.copy prev in
  Array.sort Itemset.compare prev;
  let n = Array.length prev in
  let out = ref [] in
  for i = 0 to n - 1 do
    let continue = ref true in
    let j = ref (i + 1) in
    while !continue && !j < n do
      (match Itemset.prefix_join prev.(i) prev.(!j) with
      | Some cand ->
          if all_level_subsets_ok cand ~check:prev_mem then out := cand :: !out
      | None ->
          (* sorted order: once the shared prefix breaks, no later join *)
          continue := false);
      incr j
    done
  done;
  Array.of_list !out

let extension_gen ~prev ~prev_mem ~ext_items ~is_witness =
  let ext_items = Array.copy ext_items in
  Array.sort Item.compare ext_items;
  let pool_eligible sub = Itemset.exists is_witness sub in
  let check sub = (not (pool_eligible sub)) || prev_mem sub in
  let out = ref [] in
  let emit s e =
    let cand = Itemset.add e s in
    if all_level_subsets_ok cand ~check then out := cand :: !out
  in
  (* iterate the sorted extension items from the first index exceeding a
     threshold *)
  let from_above threshold =
    let n = Array.length ext_items in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ext_items.(mid) <= threshold then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.iter
    (fun s ->
      let witnesses = Itemset.count is_witness s in
      let max_s = match Itemset.max_item s with Some m -> m | None -> -1 in
      if witnesses >= 2 then begin
        (* canonical parent of the candidate drops its maximum *)
        let start = from_above max_s in
        for i = start to Array.length ext_items - 1 do
          emit s ext_items.(i)
        done
      end
      else begin
        (* single witness w: non-witness extensions only need to clear the
           non-witness maximum; witness extensions must clear the overall
           maximum (the candidate then has two witnesses and must be the
           upward extension of its canonical parent) *)
        let w =
          match Itemset.to_list (Itemset.filter is_witness s) with
          | [ w ] -> w
          | _ -> assert false
        in
        let max_nonwitness =
          Itemset.fold (fun acc i -> if i <> w then max acc i else acc) (-1) s
        in
        let start = from_above max_nonwitness in
        for i = start to Array.length ext_items - 1 do
          let e = ext_items.(i) in
          if e <> w && ((not (is_witness e)) || e > max_s) then emit s e
        done
      end)
    prev;
  Array.of_list !out
