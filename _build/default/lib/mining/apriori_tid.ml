open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  encoded_sizes : int list;
}

(* candidate id of the pair (i, j) over n level-1 items, i < j, in
   lexicographic order *)
let pair_id ~n i j = (i * ((2 * n) - i - 1) / 2) + (j - i - 1)

let mine db io ~minsup ~universe_size =
  (* pass 1: item counts *)
  let item_counts = Tx_db.item_frequencies db io ~universe_size in
  let l1_items = ref [] in
  for i = universe_size - 1 downto 0 do
    if item_counts.(i) >= minsup then l1_items := i :: !l1_items
  done;
  let l1_items = Array.of_list !l1_items in
  let n1 = Array.length l1_items in
  let l1_index = Array.make universe_size (-1) in
  Array.iteri (fun idx item -> l1_index.(item) <- idx) l1_items;
  let levels = ref [] in
  let push entries =
    let entries = Array.of_list entries in
    Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
    levels := entries :: !levels
  in
  push
    (Array.to_list l1_items
    |> List.map (fun i -> { Frequent.set = Itemset.singleton i; support = item_counts.(i) }));
  (* pass 2: count the C2 pairs and encode each transaction as the sorted
     list of pair-candidate ids it contains; the database is not read again
     after this *)
  let n_c2 = n1 * (n1 - 1) / 2 in
  let c2_counts = Array.make n_c2 0 in
  let encoded = ref [] in
  Tx_db.iter_scan db io (fun tx ->
      let contained =
        Itemset.fold
          (fun acc item -> if l1_index.(item) >= 0 then l1_index.(item) :: acc else acc)
          [] tx.Transaction.items
        |> List.rev |> Array.of_list
      in
      let m = Array.length contained in
      if m >= 2 then begin
        let ids = Array.make (m * (m - 1) / 2) 0 in
        let w = ref 0 in
        for a = 0 to m - 1 do
          for b = a + 1 to m - 1 do
            let id = pair_id ~n:n1 contained.(a) contained.(b) in
            c2_counts.(id) <- c2_counts.(id) + 1;
            ids.(!w) <- id;
            incr w
          done
        done;
        Array.sort Int.compare ids;
        encoded := ids :: !encoded
      end);
  let encoded = ref (Array.of_list (List.rev !encoded)) in
  let encoded_sizes = ref [ Array.length !encoded ] in
  (* materialise L2 (sets + supports), and the old-candidate-id -> L_k index
     mapping used to reinterpret the encoded transactions *)
  let cand_to_lk = Array.make n_c2 (-1) in
  let l2 = ref [] in
  let n_l2 = ref 0 in
  for i = 0 to n1 - 1 do
    for j = i + 1 to n1 - 1 do
      let id = pair_id ~n:n1 i j in
      if c2_counts.(id) >= minsup then begin
        cand_to_lk.(id) <- !n_l2;
        incr n_l2;
        l2 :=
          { Frequent.set = Itemset.of_array [| l1_items.(i); l1_items.(j) |];
            support = c2_counts.(id) }
          :: !l2
      end
    done
  done;
  let lk = ref (Array.of_list (List.rev !l2)) in
  push (Array.to_list !lk);
  let cand_to_lk = ref cand_to_lk in
  (* deeper levels never touch the database *)
  let continue = ref (Array.length !lk > 0) in
  while !continue do
    let prev = !lk in
    (* generate C_{k+1} with generator indices into [prev] *)
    let prev_sets = Array.map (fun e -> e.Frequent.set) prev in
    let prev_tbl = Itemset.Hashtbl.create (2 * Array.length prev) in
    Array.iter (fun s -> Itemset.Hashtbl.replace prev_tbl s ()) prev_sets;
    let cands = ref [] and gens = Hashtbl.create 256 in
    let n_cands = ref 0 in
    for i = 0 to Array.length prev_sets - 1 do
      let broke = ref false in
      let j = ref (i + 1) in
      while (not !broke) && !j < Array.length prev_sets do
        (match Itemset.prefix_join prev_sets.(i) prev_sets.(!j) with
        | Some cand ->
            let ok = ref true in
            Itemset.iter_delete_one cand (fun sub ->
                if not (Itemset.Hashtbl.mem prev_tbl sub) then ok := false);
            if !ok then begin
              Hashtbl.replace gens (i, !j) !n_cands;
              cands := cand :: !cands;
              incr n_cands
            end
        | None -> broke := true);
        incr j
      done
    done;
    let cands = Array.of_list (List.rev !cands) in
    if Array.length cands = 0 then continue := false
    else begin
      let counts = Array.make (Array.length cands) 0 in
      (* reinterpret each encoded transaction: contained C_{k+1} candidates
         are joinable pairs of contained L_k members *)
      let next_encoded = ref [] in
      Array.iter
        (fun ids ->
          (* translate old candidate ids to current L_k indices *)
          let members =
            Array.to_seq ids
            |> Seq.filter_map (fun id ->
                   let v = !cand_to_lk.(id) in
                   if v >= 0 then Some v else None)
            |> Array.of_seq
          in
          let out = ref [] in
          let m = Array.length members in
          for a = 0 to m - 1 do
            for b = a + 1 to m - 1 do
              match Hashtbl.find_opt gens (members.(a), members.(b)) with
              | Some cid ->
                  counts.(cid) <- counts.(cid) + 1;
                  out := cid :: !out
              | None -> ()
            done
          done;
          if !out <> [] then begin
            let arr = Array.of_list !out in
            Array.sort Int.compare arr;
            next_encoded := arr :: !next_encoded
          end)
        !encoded;
      encoded := Array.of_list (List.rev !next_encoded);
      encoded_sizes := Array.length !encoded :: !encoded_sizes;
      let mapping = Array.make (Array.length cands) (-1) in
      let next_lk = ref [] and n_next = ref 0 in
      Array.iteri
        (fun cid set ->
          if counts.(cid) >= minsup then begin
            mapping.(cid) <- !n_next;
            incr n_next;
            next_lk := { Frequent.set; support = counts.(cid) } :: !next_lk
          end)
        cands;
      lk := Array.of_list (List.rev !next_lk);
      cand_to_lk := mapping;
      if Array.length !lk = 0 then continue := false else push (Array.to_list !lk)
    end
  done;
  { frequent = Frequent.of_levels (List.rev !levels); encoded_sizes = List.rev !encoded_sizes }
