(** FP-growth: frequent-set mining without candidate generation
    (Han, Pei & Yin, SIGMOD 2000 — the pattern-growth family that grew out
    of the same group's constrained-mining line).

    Two scans build an FP-tree — a prefix tree of transactions with items
    ordered by descending frequency and per-item header chains — and the
    tree is then mined recursively through conditional pattern bases,
    without ever materialising candidate sets.  Provided as an independent
    substrate and oracle next to Apriori (levelwise), Eclat (vertical) and
    Partition (two-scan). *)

open Cfq_txdb

(** [mine db io ~minsup ~universe_size] returns all frequent itemsets with
    exact supports.  Exactly two scans are charged. *)
val mine : Tx_db.t -> Io_stats.t -> minsup:int -> universe_size:int -> Frequent.t
