type t = {
  mutable support_counted : int;
  mutable constraint_checks : int;
  mutable candidates_generated : int;
}

let create () = { support_counted = 0; constraint_checks = 0; candidates_generated = 0 }

let reset t =
  t.support_counted <- 0;
  t.constraint_checks <- 0;
  t.candidates_generated <- 0

let add_support_counted t n = t.support_counted <- t.support_counted + n
let add_constraint_checks t n = t.constraint_checks <- t.constraint_checks + n
let add_candidates_generated t n = t.candidates_generated <- t.candidates_generated + n

let support_counted t = t.support_counted
let constraint_checks t = t.constraint_checks
let candidates_generated t = t.candidates_generated

let merge dst src =
  dst.support_counted <- dst.support_counted + src.support_counted;
  dst.constraint_checks <- dst.constraint_checks + src.constraint_checks;
  dst.candidates_generated <- dst.candidates_generated + src.candidates_generated

let pp ppf t =
  Format.fprintf ppf "support-counted=%d constraint-checks=%d candidates=%d"
    t.support_counted t.constraint_checks t.candidates_generated
