open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  rounds : int;
  sample_size : int;
}

(* negative border of a downward-closed collection: the minimal missing
   sets, i.e. X ∉ F with every (|X|-1)-subset in F *)
let negative_border ~universe_size (f : unit Itemset.Hashtbl.t) =
  let border = ref [] in
  (* singletons *)
  for i = 0 to universe_size - 1 do
    if not (Itemset.Hashtbl.mem f (Itemset.singleton i)) then
      border := Itemset.singleton i :: !border
  done;
  (* group members by level, join within levels *)
  let by_level = Hashtbl.create 16 in
  Itemset.Hashtbl.iter
    (fun s () ->
      let k = Itemset.cardinal s in
      Hashtbl.replace by_level k (s :: Option.value ~default:[] (Hashtbl.find_opt by_level k)))
    f;
  Hashtbl.iter
    (fun _k sets ->
      let cands =
        Candidate.apriori_gen ~prev:(Array.of_list sets) ~prev_mem:(Itemset.Hashtbl.mem f)
      in
      Array.iter
        (fun c -> if not (Itemset.Hashtbl.mem f c) then border := c :: !border)
        cands)
    by_level;
  List.sort_uniq Itemset.compare !border

(* deterministic hash-based Bernoulli sample *)
let in_sample ~seed ~sample_frac tid =
  let h = (tid * 2654435761) lxor (seed * 40503) in
  let h = (h lxor (h lsr 16)) land 0xFFFF in
  float_of_int h /. 65536. < sample_frac

let count_sets db io cands =
  let trie = Trie.build cands in
  Tx_db.iter_scan db io (fun tx ->
      Trie.count_tx trie (Itemset.unsafe_to_array tx.Transaction.items));
  Trie.counts trie

let mine db io ~minsup ~universe_size ~sample_frac ?(lower = 0.8) ?(seed = 1) () =
  if sample_frac <= 0. || sample_frac > 1. then invalid_arg "Sampling.mine: sample_frac";
  (* pass 0: draw the sample *)
  let sample = ref [] in
  let sample_size = ref 0 in
  Tx_db.iter_scan db io (fun tx ->
      if in_sample ~seed ~sample_frac tx.Transaction.tid then begin
        incr sample_size;
        sample := tx.Transaction.items :: !sample
      end);
  let sample_db = Tx_db.create (Array.of_list !sample) in
  let rel_minsup = float_of_int minsup /. float_of_int (Tx_db.size db) in
  let sample_minsup =
    max 1 (int_of_float (Float.round (lower *. rel_minsup *. float_of_int !sample_size)))
  in
  (* in-memory mining of the sample (scan accounting ignores the sample: it
     fits in memory, that is the algorithm's point) *)
  let sample_io = Io_stats.create () in
  let vertical = Vertical.build sample_db sample_io ~universe_size in
  let sample_frequent = Vertical.mine vertical ~minsup:sample_minsup in
  (* iterate: count candidates ∪ negative border until the border is
     certified infrequent *)
  let supports = Itemset.Hashtbl.create 1024 in
  let known_frequent = Itemset.Hashtbl.create 1024 in
  Frequent.iter
    (fun e -> Itemset.Hashtbl.replace known_frequent e.Frequent.set ())
    sample_frequent;
  let rounds = ref 0 in
  let stable = ref false in
  while not !stable do
    incr rounds;
    let border = negative_border ~universe_size known_frequent in
    let to_count =
      List.filter (fun s -> not (Itemset.Hashtbl.mem supports s)) border
      @ Itemset.Hashtbl.fold
          (fun s () acc -> if Itemset.Hashtbl.mem supports s then acc else s :: acc)
          known_frequent []
    in
    if to_count = [] then stable := true
    else begin
      let cands = Array.of_list to_count in
      let counts = count_sets db io cands in
      Array.iteri (fun i s -> Itemset.Hashtbl.replace supports s counts.(i)) cands;
      (* expand around any border set that is globally frequent *)
      let grew = ref false in
      List.iter
        (fun s ->
          match Itemset.Hashtbl.find_opt supports s with
          | Some n when n >= minsup ->
              if not (Itemset.Hashtbl.mem known_frequent s) then begin
                Itemset.Hashtbl.replace known_frequent s ();
                grew := true
              end
          | Some _ | None -> ())
        border;
      (* drop sample-frequent sets that are not globally frequent *)
      Itemset.Hashtbl.iter
        (fun s n -> if n < minsup then Itemset.Hashtbl.remove known_frequent s)
        (Itemset.Hashtbl.copy supports);
      if not !grew then stable := true
    end
  done;
  let by_level = Hashtbl.create 16 in
  Itemset.Hashtbl.iter
    (fun s n ->
      if n >= minsup then begin
        let k = Itemset.cardinal s in
        Hashtbl.replace by_level k
          ({ Frequent.set = s; support = n }
          :: Option.value ~default:[] (Hashtbl.find_opt by_level k))
      end)
    supports;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  let frequent =
    Frequent.of_levels
      (List.init max_k (fun i ->
           let entries =
             Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
           in
           Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
           entries))
  in
  { frequent; rounds = !rounds; sample_size = !sample_size }
