open Cfq_itembase
open Cfq_txdb

(* local Eclat over one partition's tid lists *)
let mine_partition tid_lists ~local_minsup ~universe_size collect =
  let intersect a b =
    let na = Array.length a and nb = Array.length b in
    let out = Array.make (min na nb) 0 in
    let rec loop ia ib w =
      if ia >= na || ib >= nb then w
      else
        let x = a.(ia) and y = b.(ib) in
        if x < y then loop (ia + 1) ib w
        else if y < x then loop ia (ib + 1) w
        else begin
          out.(w) <- x;
          loop (ia + 1) (ib + 1) (w + 1)
        end
    in
    let n = loop 0 0 0 in
    if n = Array.length out then out else Array.sub out 0 n
  in
  let rec grow set tids last =
    for i = last + 1 to universe_size - 1 do
      let next = intersect tids tid_lists.(i) in
      if Array.length next >= local_minsup then begin
        let set' = Itemset.add i set in
        collect set';
        grow set' next i
      end
    done
  in
  for i = 0 to universe_size - 1 do
    if Array.length tid_lists.(i) >= local_minsup then begin
      let set = Itemset.singleton i in
      collect set;
      grow set tid_lists.(i) i
    end
  done

let mine db io ~minsup ~n_partitions ~universe_size =
  if n_partitions <= 0 then invalid_arg "Partition.mine: n_partitions";
  let n = Tx_db.size db in
  let n_partitions = max 1 (min n_partitions (max 1 n)) in
  let candidates = Itemset.Hashtbl.create 1024 in
  (* pass 1: mine each partition at the proportional local threshold *)
  let bounds =
    Array.init n_partitions (fun p ->
        (p * n / n_partitions, ((p + 1) * n / n_partitions) - 1))
  in
  Io_stats.record_scan io ~pages:(Tx_db.pages db) ~tuples:n;
  Array.iter
    (fun (lo, hi) ->
      if hi >= lo then begin
        let size = hi - lo + 1 in
        (* ceil: a globally frequent set must reach the proportional share
           in at least one partition *)
        let local_minsup = max 1 (((minsup * size) + n - 1) / n) in
        let tid_lists = Array.make universe_size [] in
        for tid = lo to hi do
          Itemset.iter
            (fun i -> tid_lists.(i) <- tid :: tid_lists.(i))
            (Tx_db.get db tid).Transaction.items
        done;
        let tid_lists = Array.map (fun l -> Array.of_list (List.rev l)) tid_lists in
        mine_partition tid_lists ~local_minsup ~universe_size (fun s ->
            if not (Itemset.Hashtbl.mem candidates s) then
              Itemset.Hashtbl.replace candidates s ())
      end)
    bounds;
  (* pass 2: exact global counts for the candidate union *)
  let cands = Array.of_seq (Itemset.Hashtbl.to_seq_keys candidates) in
  let trie = Trie.build cands in
  Tx_db.iter_scan db io (fun tx ->
      Trie.count_tx trie (Itemset.unsafe_to_array tx.Transaction.items));
  let counts = Trie.counts trie in
  let by_level = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      if counts.(i) >= minsup then begin
        let k = Itemset.cardinal s in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
        Hashtbl.replace by_level k ({ Frequent.set = s; support = counts.(i) } :: cur)
      end)
    cands;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  Frequent.of_levels
    (List.init max_k (fun i ->
         let entries =
           Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
         in
         Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
         entries))
