(** AprioriTid — the second algorithm of Agrawal & Srikant's VLDB'94 paper
    (reference [2]): after the first pass, the database is never scanned
    again; instead each transaction is represented by the set of level-[k]
    candidates it contains, and the level-[k+1] representation is computed
    from the level-[k] one.

    Late levels shrink dramatically (transactions containing no candidate
    drop out entirely), at the price of materialising the encoded database
    in memory — the classic time/space trade against plain Apriori. *)

open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  encoded_sizes : int list;
      (** surviving encoded transactions after each level ≥ 2, newest last *)
}

(** [mine db io ~minsup ~universe_size]: exact frequent sets, one database
    scan (the encoding pass). *)
val mine : Tx_db.t -> Io_stats.t -> minsup:int -> universe_size:int -> outcome
