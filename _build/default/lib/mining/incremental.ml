open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  old_scans : int;
  counted_against_old : int;
}

let ceil_frac frac n = max 1 (int_of_float (Float.ceil (frac *. float_of_int n)))

let count_in db io cands =
  if Array.length cands = 0 then [||]
  else begin
    let trie = Trie.build cands in
    Tx_db.iter_scan db io (fun tx ->
        Trie.count_tx trie (Itemset.unsafe_to_array tx.Transaction.items));
    Trie.counts trie
  end

let to_frequent entries =
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun (set, support) ->
      let k = Itemset.cardinal set in
      Hashtbl.replace by_level k
        ({ Frequent.set; support }
        :: Option.value ~default:[] (Hashtbl.find_opt by_level k)))
    entries;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  Frequent.of_levels
    (List.init max_k (fun i ->
         let level =
           Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
         in
         Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) level;
         level))

let update ~old_db ~old_frequent ~delta io ~minsup_frac ~universe_size =
  let n_old = Tx_db.size old_db and n_delta = Tx_db.size delta in
  let old_minsup = ceil_frac minsup_frac n_old in
  let minsup_union = ceil_frac minsup_frac (n_old + n_delta) in
  (* 1. update every old frequent set with its count in the increment *)
  let old_sets =
    Array.of_list (List.map (fun e -> e.Frequent.set) (Frequent.to_list old_frequent))
  in
  let delta_counts = count_in delta io old_sets in
  let winners = ref [] in
  Array.iteri
    (fun i set ->
      let total =
        delta_counts.(i)
        + Option.value ~default:0 (Frequent.support old_frequent set)
      in
      if total >= minsup_union then winners := (set, total) :: !winners)
    old_sets;
  (* 2. a set that was not frequent in the old database needs at least this
     much support inside the increment to be frequent overall *)
  let threshold_delta = max 1 (minsup_union - (old_minsup - 1)) in
  let delta_io = Io_stats.create () in
  let delta_frequent =
    Vertical.mine (Vertical.build delta delta_io ~universe_size) ~minsup:threshold_delta
  in
  let new_cands =
    Frequent.fold
      (fun acc e ->
        if Frequent.mem old_frequent e.Frequent.set then acc else e.Frequent.set :: acc)
      [] delta_frequent
    |> Array.of_list
  in
  let old_scans = ref 0 in
  if Array.length new_cands > 0 then begin
    incr old_scans;
    let old_counts = count_in old_db io new_cands in
    (* the delta supports of the new candidates are exact in delta_frequent *)
    Array.iteri
      (fun i set ->
        let total =
          old_counts.(i)
          + Option.value ~default:0 (Frequent.support delta_frequent set)
        in
        if total >= minsup_union then winners := (set, total) :: !winners)
      new_cands
  end;
  {
    frequent = to_frequent !winners;
    old_scans = !old_scans;
    counted_against_old = Array.length new_cands;
  }
