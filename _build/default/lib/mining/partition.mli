(** The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB'95 — the
    "partitioning" approach the paper's introduction cites): frequent-set
    mining in exactly two scans.

    The database is split into [n] partitions sized to fit in memory; each
    partition is mined locally (any itemset frequent globally must be
    locally frequent in at least one partition, at the proportional
    threshold), and the union of the local frequent sets is then counted
    exactly in one global pass. *)

open Cfq_txdb

(** [mine db io ~minsup ~n_partitions ~universe_size] returns exactly the
    globally frequent itemsets with their true supports.  I/O accounting:
    two full scans (the per-partition pass touches every page once). *)
val mine :
  Tx_db.t ->
  Io_stats.t ->
  minsup:int ->
  n_partitions:int ->
  universe_size:int ->
  Frequent.t
