open Cfq_itembase

(* mutable build-time representation *)
type bnode = {
  children : (int, bnode) Hashtbl.t;
  mutable bcand : int;
}

(* frozen counting representation, no allocation on the counting path and
   safely shareable across domains: high-fanout nodes become dense jump
   tables over their key span, the rest sorted key/child arrays *)
type node = {
  keys : int array;  (* sorted; unused when dense *)
  kids : node array;
  dense_base : int;  (* -1 when sparse *)
  dense : node option array;  (* empty when sparse *)
  cand : int;
}

type t = {
  root : node;
  counts : int array;
}

let new_bnode () = { children = Hashtbl.create 4; bcand = -1 }

let rec freeze b =
  let pairs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.children []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let keys = Array.of_list (List.map fst pairs) in
  let kids = Array.of_list (List.map (fun (_, v) -> freeze v) pairs) in
  let fanout = Array.length keys in
  let span = if fanout = 0 then 0 else keys.(fanout - 1) - keys.(0) + 1 in
  if fanout >= 8 && span <= 16 * fanout then begin
    let dense = Array.make span None in
    Array.iteri (fun i k -> dense.(k - keys.(0)) <- Some kids.(i)) keys;
    { keys = [||]; kids = [||]; dense_base = keys.(0); dense; cand = b.bcand }
  end
  else { keys; kids; dense_base = -1; dense = [||]; cand = b.bcand }

let build cands =
  let root = new_bnode () in
  Array.iteri
    (fun idx set ->
      let node = ref root in
      Itemset.iter
        (fun item ->
          let next =
            match Hashtbl.find_opt !node.children item with
            | Some n -> n
            | None ->
                let n = new_bnode () in
                Hashtbl.replace !node.children item n;
                n
          in
          node := next)
        set;
      !node.bcand <- idx)
    cands;
  { root = freeze root; counts = Array.make (Array.length cands) 0 }

let n_candidates t = Array.length t.counts

(* binary search in a sorted key array; -1 when absent *)
let find_key keys item =
  let lo = ref 0 and hi = ref (Array.length keys - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k = Array.unsafe_get keys mid in
    if k = item then found := mid
    else if k < item then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let count_tx_into t counts items =
  let n = Array.length items in
  let rec walk node pos =
    if node.cand >= 0 then counts.(node.cand) <- counts.(node.cand) + 1;
    if node.dense_base >= 0 then begin
      let base = node.dense_base in
      let span = Array.length node.dense in
      for j = pos to n - 1 do
        let off = Array.unsafe_get items j - base in
        if off >= 0 && off < span then
          match Array.unsafe_get node.dense off with
          | Some child -> walk child (j + 1)
          | None -> ()
      done
    end
    else if Array.length node.keys > 0 then
      for j = pos to n - 1 do
        let idx = find_key node.keys (Array.unsafe_get items j) in
        if idx >= 0 then walk node.kids.(idx) (j + 1)
      done
  in
  walk t.root 0

let count_tx t items = count_tx_into t t.counts items
let counts t = t.counts
