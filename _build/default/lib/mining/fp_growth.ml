open Cfq_itembase
open Cfq_txdb

type node = {
  item : Item.t;
  mutable count : int;
  parent : node option;
  children : (Item.t, node) Hashtbl.t;
}

type tree = {
  root : node;
  headers : (Item.t, node list ref) Hashtbl.t;
  (* items present, ordered by descending conditional frequency *)
  order : Item.t array;
}

let new_node ?parent item = { item; count = 0; parent; children = Hashtbl.create 4 }

(* weighted transactions: items must already be filtered to the frequent
   ones and sorted in tree order *)
let build_tree ~freqs ~minsup paths =
  let frequent_items =
    Hashtbl.fold (fun i n acc -> if n >= minsup then (i, n) :: acc else acc) freqs []
  in
  let order =
    frequent_items
    |> List.sort (fun (i1, n1) (i2, n2) ->
           match Int.compare n2 n1 with 0 -> Int.compare i1 i2 | c -> c)
    |> List.map fst |> Array.of_list
  in
  let rank = Hashtbl.create 64 in
  Array.iteri (fun r i -> Hashtbl.replace rank i r) order;
  let root = new_node (-1) in
  let headers = Hashtbl.create 64 in
  let insert items weight =
    let sorted =
      items
      |> List.filter_map (fun i ->
             match Hashtbl.find_opt rank i with Some r -> Some (r, i) | None -> None)
      |> List.sort compare |> List.map snd
    in
    let node = ref root in
    List.iter
      (fun i ->
        let next =
          match Hashtbl.find_opt !node.children i with
          | Some n -> n
          | None ->
              let n = new_node ~parent:!node i in
              Hashtbl.replace !node.children i n;
              let chain =
                match Hashtbl.find_opt headers i with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.replace headers i c;
                    c
              in
              chain := n :: !chain;
              n
        in
        next.count <- next.count + weight;
        node := next)
      sorted
  in
  List.iter (fun (items, weight) -> insert items weight) paths;
  { root; headers; order }

(* prefix path from a node (exclusive) up to the root *)
let prefix_path node =
  let rec up acc n =
    match n.parent with
    | Some p when p.item >= 0 -> up (p.item :: acc) p
    | Some _ | None -> acc
  in
  up [] node

let mine db io ~minsup ~universe_size =
  let freqs = Hashtbl.create 256 in
  let global = Tx_db.item_frequencies db io ~universe_size in
  Array.iteri (fun i n -> if n > 0 then Hashtbl.replace freqs i n) global;
  let paths = ref [] in
  Tx_db.iter_scan db io (fun tx ->
      paths := (Itemset.to_list tx.Transaction.items, 1) :: !paths);
  let tree = build_tree ~freqs ~minsup !paths in
  let by_level = Hashtbl.create 16 in
  let emit set support =
    let k = Itemset.cardinal set in
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
    Hashtbl.replace by_level k ({ Frequent.set; support } :: cur)
  in
  let rec grow tree base =
    (* least-frequent first: the classic bottom-up header traversal *)
    for r = Array.length tree.order - 1 downto 0 do
      let item = tree.order.(r) in
      match Hashtbl.find_opt tree.headers item with
      | None -> ()
      | Some chain ->
          let support = List.fold_left (fun acc n -> acc + n.count) 0 !chain in
          if support >= minsup then begin
            let base' = Itemset.add item base in
            emit base' support;
            (* conditional pattern base, with per-path conditional counts *)
            let cond_freqs = Hashtbl.create 16 in
            let cond_paths =
              List.map
                (fun n ->
                  let path = prefix_path n in
                  List.iter
                    (fun i ->
                      Hashtbl.replace cond_freqs i
                        (n.count + Option.value ~default:0 (Hashtbl.find_opt cond_freqs i)))
                    path;
                  (path, n.count))
                !chain
            in
            if Hashtbl.length cond_freqs > 0 then begin
              let cond_tree = build_tree ~freqs:cond_freqs ~minsup cond_paths in
              grow cond_tree base'
            end
          end
    done
  in
  grow tree Itemset.empty;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  Frequent.of_levels
    (List.init max_k (fun i ->
         let entries =
           Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
         in
         Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
         entries))
