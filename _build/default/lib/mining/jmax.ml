open Cfq_itembase

let cap = max_int / 2

let binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    (* multiplicative formula; each prefix product is an exact binomial *)
    let acc = ref 1 in
    (try
       for i = 1 to k do
         if !acc > cap / (n - k + i) then begin
           acc := cap;
           raise Exit
         end;
         acc := !acc * (n - k + i) / i
       done
     with Exit -> ());
    min !acc cap
  end

let element_counts level =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun e ->
      Itemset.iter
        (fun i ->
          let n = Option.value ~default:0 (Hashtbl.find_opt tbl i) in
          Hashtbl.replace tbl i (n + 1))
        e.Frequent.set)
    level;
  tbl

let j_for ~k n_i =
  (* largest j with n_i ≥ C(k+j-1, k-1); a set of size k+j containing t_i
     has that many size-k subsets containing t_i, all frequent *)
  let rec loop j =
    if binom (k + j) (k - 1) <= n_i then loop (j + 1) else j
  in
  loop 0

let per_element_j ~k level =
  if k < 2 then invalid_arg "Jmax.per_element_j: k must be >= 2";
  if Array.length level = 0 then invalid_arg "Jmax.per_element_j: empty level";
  Hashtbl.fold (fun i n acc -> (i, j_for ~k n) :: acc) (element_counts level) []

let jmax ~k level =
  List.fold_left (fun acc (_, j) -> max acc j) 0 (per_element_j ~k level)

module Sum_bound = struct
  type t = {
    info : Item_info.t;
    attr : Attr.t;
    mutable observed_max : float;
    mutable bound : float;
    mutable saw_level1 : bool;
  }

  let create info attr =
    { info; attr; observed_max = neg_infinity; bound = infinity; saw_level1 = false }

  let set_sum t s = Item_info.sum_of t.info t.attr s

  let projected_bound t ~k level =
    (* Figure 6, with the tighter per-element J_i in place of the global
       Jmax^k (sound: the largest frequent set containing t_i has at most
       k + J_i elements) *)
    let js = per_element_j ~k level in
    let value i = Item_info.value t.info t.attr i in
    (* per element: best-sum set containing it, and its co-occurring items *)
    let best : (Item.t, float * Itemset.t) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (fun e ->
        let s = set_sum t e.Frequent.set in
        Itemset.iter
          (fun i ->
            match Hashtbl.find_opt best i with
            | Some (m, _) when m >= s -> ()
            | Some _ | None -> Hashtbl.replace best i (s, e.Frequent.set))
          e.Frequent.set)
      level;
    let cooc : (Item.t, (Item.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (fun e ->
        Itemset.iter
          (fun i ->
            let set =
              match Hashtbl.find_opt cooc i with
              | Some s -> s
              | None ->
                  let s = Hashtbl.create 8 in
                  Hashtbl.replace cooc i s;
                  s
            in
            Itemset.iter (fun j -> if j <> i then Hashtbl.replace set j ()) e.Frequent.set)
          e.Frequent.set)
      level;
    List.fold_left
      (fun acc (i, j_i) ->
        match Hashtbl.find_opt best i with
        | None -> acc
        | Some (sum_i, t_i) ->
            let extras =
              Hashtbl.fold
                (fun e () l -> if Itemset.mem e t_i then l else value e :: l)
                (Option.value ~default:(Hashtbl.create 0) (Hashtbl.find_opt cooc i))
                []
            in
            let extras = List.sort (fun a b -> Float.compare b a) extras in
            let rec take n = function
              | v :: rest when n > 0 && v > 0. -> v +. take (n - 1) rest
              | _ -> 0.
            in
            Float.max acc (sum_i +. take j_i extras))
      neg_infinity js

  let observe_level t ~k level =
    Array.iter
      (fun e -> t.observed_max <- Float.max t.observed_max (set_sum t e.Frequent.set))
      level;
    if Array.length level = 0 then
      (* the lattice produced nothing at this size: no larger set exists,
         the exact observed maximum is the final bound *)
      t.bound <- Float.min t.bound t.observed_max
    else if k = 1 then begin
      t.saw_level1 <- true;
      (* V^1: sum of the positive values of the frequent items *)
      let total =
        Array.fold_left
          (fun acc e ->
            let v = set_sum t e.Frequent.set in
            if v > 0. then acc +. v else acc)
          0. level
      in
      t.bound <- Float.min t.bound (Float.max t.observed_max total)
    end
    else if k >= 2 then
      t.bound <- Float.min t.bound (Float.max t.observed_max (projected_bound t ~k level))

  let bound t = t.bound
  let observed_max t = t.observed_max
end
