(** Candidate generation for the levelwise engines.

    Two generation modes are provided.  [apriori_gen] is the classical
    join-and-prune of the Apriori algorithm.  [extension_gen] is the
    generation used by CAP when a succinct-but-not-anti-monotone constraint
    is pushed: the pool then only contains sets with a required witness
    item, so candidates are produced by single-item extension and the prune
    step may only consult subsets that are themselves pool-eligible. *)

open Cfq_itembase

(** [pairs_all items] is every 2-set over [items]. *)
val pairs_all : Item.t array -> Itemset.t array

(** [pairs_with_witness ~witnesses ~items] is every 2-set containing at
    least one witness ([witnesses ⊆ items]); duplicates removed. *)
val pairs_with_witness : witnesses:Item.t array -> items:Item.t array -> Itemset.t array

(** [apriori_gen ~prev ~prev_mem] joins the size-[k] sets of [prev] (sorted
    internally) into size-[k+1] candidates and prunes any candidate with a
    size-[k] subset missing from [prev_mem]. *)
val apriori_gen : prev:Itemset.t array -> prev_mem:(Itemset.t -> bool) -> Itemset.t array

(** [extension_gen ~prev ~prev_mem ~ext_items ~is_witness] extends each
    pool set by one item of [ext_items] and prunes any candidate having a
    size-[k] subset that is pool-eligible (contains a witness) but absent
    from [prev_mem].

    Generation is canonical — every candidate is produced from exactly one
    parent, so no deduplication pass is needed: a parent with two or more
    witnesses extends only upward (items above its maximum), while a
    single-witness parent additionally accepts non-witness items above the
    maximum of its non-witness part (the witness itself may sit anywhere in
    the order). *)
val extension_gen :
  prev:Itemset.t array ->
  prev_mem:(Itemset.t -> bool) ->
  ext_items:Item.t array ->
  is_witness:(Item.t -> bool) ->
  Itemset.t array
