(** Support counting passes over the transaction database.

    [count_shared] is the dovetailing primitive (Section 5.2): several
    candidate families — typically one for the [S] lattice and one for the
    [T] lattice — are counted in a {e single} scan, so the I/O cost of the
    pass is shared between them. *)

open Cfq_itembase
open Cfq_txdb

(** [count_level db io counters cands] counts all candidates in one scan and
    charges [Array.length cands] to the support-counted ccc counter. *)
val count_level :
  Tx_db.t -> Io_stats.t -> Counters.t -> Itemset.t array -> int array

(** [count_shared db io families] counts each family in the same scan;
    each family carries its own ccc counters. *)
val count_shared :
  Tx_db.t -> Io_stats.t -> (Counters.t * Itemset.t array) list -> int array list

(** [count_level_parallel db io counters cands ~domains] is
    {!count_level} with the transaction range split across [domains]
    OCaml 5 domains, each walking the shared (immutable) candidate trie
    into its own counter array.  Exactly one scan is charged.  Results are
    identical to the sequential pass. *)
val count_level_parallel :
  Tx_db.t -> Io_stats.t -> Counters.t -> Itemset.t array -> domains:int -> int array
