open Cfq_itembase
open Cfq_constr

let run db io counters ~bundle ~minsup =
  let info = bundle.Bundle.info in
  let n = Item_info.universe_size info in
  if n > 20 then invalid_arg "Full_mat.run: universe too large for full materialization";
  let universe = Itemset.of_array (Array.init n (fun i -> i)) in
  (* phase 1: constraint-check the whole powerset *)
  let by_size = Hashtbl.create 16 in
  Itemset.powerset universe (fun s ->
      if not (Itemset.is_empty s) then begin
        Counters.add_constraint_checks counters 1;
        if Bundle.eval_originals bundle s then begin
          let k = Itemset.cardinal s in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_size k) in
          Hashtbl.replace by_size k (s :: cur)
        end
      end);
  (* phase 2: count the valid sets in ascending cardinality, one scan per
     level, requiring every valid subset one size down to be frequent *)
  let freq_tbl = Itemset.Hashtbl.create 256 in
  let levels = ref [] in
  for k = 1 to n do
    let valid_k = Option.value ~default:[] (Hashtbl.find_opt by_size k) in
    (* countable: every valid subset one size down is frequent (a valid set
       with no valid subsets — e.g. under a superset constraint — is
       countable vacuously) *)
    let eligible =
      List.filter
        (fun s ->
          k = 1
          ||
          let ok = ref true in
          Itemset.iter_delete_one s (fun sub ->
              if
                Bundle.eval_originals bundle sub
                && not (Itemset.Hashtbl.mem freq_tbl sub)
              then ok := false);
          !ok)
        valid_k
    in
    let cands = Array.of_list eligible in
    if Array.length cands = 0 then levels := [||] :: !levels
    else begin
      let counts = Counting.count_level db io counters cands in
      let entries = ref [] in
      Array.iteri
        (fun i s ->
          if counts.(i) >= minsup then begin
            Itemset.Hashtbl.replace freq_tbl s ();
            entries := { Frequent.set = s; support = counts.(i) } :: !entries
          end)
        cands;
      levels :=
        Array.of_list
          (List.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set)
             (List.rev !entries))
        :: !levels
    end
  done;
  Frequent.of_levels (List.rev !levels)
