(** Collections of frequent sets with their supports, organised by level. *)

open Cfq_itembase

type entry = {
  set : Itemset.t;
  support : int;
}

type t

val empty : t

(** [of_levels ls] builds from per-level entry arrays ([ls.(0)] = size-1
    sets, etc.; empty trailing levels allowed). *)
val of_levels : entry array list -> t

(** Number of the deepest non-empty level (0 when empty). *)
val max_level : t -> int

(** [level t k] is the entries of size [k] (possibly [[||]]). *)
val level : t -> int -> entry array

val n_sets : t -> int

(** [support t s] is [Some n] if [s] was recorded frequent. *)
val support : t -> Itemset.t -> int option

val mem : t -> Itemset.t -> bool

(** All frequent items (the level-1 sets flattened). *)
val l1_items : t -> Itemset.t

val iter : (entry -> unit) -> t -> unit
val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a
val to_list : t -> entry list

(** [filter p t] keeps the entries whose set satisfies [p]. *)
val filter : (Itemset.t -> bool) -> t -> t

(** [filter_entries p t] keeps the entries satisfying [p] (set and
    support). *)
val filter_entries : (entry -> bool) -> t -> t

(** [maximal t] is the entries whose set has no frequent proper superset —
    the compact description of the collection (cf. long-pattern mining,
    reference [3] of the paper). *)
val maximal : t -> entry list

(** [closed t] is the entries with no frequent proper superset of equal
    support — the lossless compression of the collection (every frequent
    set's support is recoverable from its smallest closed superset). *)
val closed : t -> entry list
