(** The two fundamental cost counters of ccc-optimality (Definition 6):
    how many sets were counted for support, and how many times the
    constraint-checking operation was invoked. *)

type t

val create : unit -> t
val reset : t -> unit

val add_support_counted : t -> int -> unit
val add_constraint_checks : t -> int -> unit
val add_candidates_generated : t -> int -> unit

val support_counted : t -> int
val constraint_checks : t -> int
val candidates_generated : t -> int

(** [merge dst src] accumulates [src] into [dst]. *)
val merge : t -> t -> unit

val pp : Format.formatter -> t -> unit
