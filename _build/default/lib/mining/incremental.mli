(** Incremental maintenance of frequent sets under insertions — the FUP
    idea (Cheung, Han, Ng & Wong, ICDE'96; reference [6] of the paper).

    Given the frequent sets of a database [DB] and a batch of new
    transactions [db], the frequent sets of [DB ∪ db] are computed by
    scanning mostly the {e increment}:

    {ul
    {- every old frequent set is updated with its count in [db] alone —
       winners and losers among them are decided without touching [DB];}
    {- a candidate that was {e not} frequent in [DB] can only become
       frequent overall if it is frequent inside [db] (proportionally), so
       new candidates are seeded from the increment and only they are
       counted against the old database.}} *)

open Cfq_txdb

type outcome = {
  frequent : Frequent.t;  (** exact frequent sets of the union *)
  old_scans : int;  (** scans of the old database (the expensive ones) *)
  counted_against_old : int;  (** candidate sets counted against [DB] *)
}

(** [update ~old_db ~old_frequent ~delta io ~minsup_frac ~universe_size]
    where [old_frequent] must be the exact frequent collection of [old_db]
    at relative threshold [minsup_frac].  The result is exact for
    [old_db ∪ delta] at the same relative threshold. *)
val update :
  old_db:Tx_db.t ->
  old_frequent:Frequent.t ->
  delta:Tx_db.t ->
  Io_stats.t ->
  minsup_frac:float ->
  universe_size:int ->
  outcome
