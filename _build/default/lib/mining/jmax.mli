(** Iterative pruning for [sum]/[avg] constraints (Section 5.2).

    {!jmax} is the Figure 5 bound: given all frequent sets of size [k], an
    upper bound [J] such that no frequent set larger than [k + J] can exist
    (an element appearing in a frequent set of size [k+j] must appear in at
    least [C(k+j-1, k-1)] frequent sets of size [k]).

    {!Sum_bound} is the Figure 6 series [V^2 ≥ V^3 ≥ ...]: after observing
    level [k] of a lattice, [bound] is an upper limit on [sum(T.B)] over
    {e every} frequent set [T] of that lattice — past or future.  Feeding
    it the [T]-side levels lets the [S] side install the anti-monotone
    candidate filter [sum(CS.A) ≤ V^k] for a constraint
    [sum(S.A) ≤ sum(T.B)].

    Soundness requires the observed lattice to be {e subset-complete}: every
    frequent set of the lattice's universe that satisfies its anti-monotone
    constraints is enumerated.  This holds for universe-filter and
    anti-monotone pruning but {e not} for witness-requiring (succinct
    non-anti-monotone) generation; the query optimizer only enables the
    filter in the former case. *)

open Cfq_itembase

(** [binom n k] with saturation at [max_int / 2]. *)
val binom : int -> int -> int

(** [jmax ~k level] for [k ≥ 2]; raises [Invalid_argument] on [k < 2] or an
    empty level. *)
val jmax : k:int -> Frequent.entry array -> int

(** [per_element_j ~k level] is the [J_i] bound for each element of [L_k],
    as an association list. *)
val per_element_j : k:int -> Frequent.entry array -> (Item.t * int) list

module Sum_bound : sig
  type t

  (** [create info attr] tracks an upper bound on [sum(X.attr)] over the
      frequent sets of one lattice.  Attribute values must be
      non-negative. *)
  val create : Item_info.t -> Attr.t -> t

  (** [observe_level t ~k level] incorporates a {e complete} level [k]. *)
  val observe_level : t -> k:int -> Frequent.entry array -> unit

  (** Current [V^k]; [infinity] until a level with [k ≥ 2] was observed. *)
  val bound : t -> float

  (** Exact maximum of [sum] over the sets observed so far ([neg_infinity]
      initially). *)
  val observed_max : t -> float
end
