lib/mining/apriori_tid.mli: Cfq_txdb Frequent Io_stats Tx_db
