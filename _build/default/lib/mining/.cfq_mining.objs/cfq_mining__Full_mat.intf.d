lib/mining/full_mat.mli: Bundle Cfq_constr Cfq_txdb Counters Frequent Io_stats Tx_db
