lib/mining/jmax.ml: Array Attr Cfq_itembase Float Frequent Hashtbl Item Item_info Itemset List Option
