lib/mining/vertical.mli: Cfq_itembase Cfq_txdb Frequent Io_stats Item Itemset Tx_db
