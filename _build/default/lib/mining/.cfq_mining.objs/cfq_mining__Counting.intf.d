lib/mining/counting.mli: Cfq_itembase Cfq_txdb Counters Io_stats Itemset Tx_db
