lib/mining/counting.ml: Array Cfq_itembase Cfq_txdb Counters Domain Io_stats List Transaction Trie Tx_db
