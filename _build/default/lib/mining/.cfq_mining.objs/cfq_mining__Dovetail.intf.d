lib/mining/dovetail.mli: Cap Cfq_itembase Cfq_txdb Frequent Io_stats Itemset
