lib/mining/trie.mli: Cfq_itembase Item Itemset
