lib/mining/dovetail.ml: Array Cap Cfq_itembase Counting Frequent Itemset List Option
