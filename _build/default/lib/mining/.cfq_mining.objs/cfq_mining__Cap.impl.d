lib/mining/cap.ml: Array Bundle Candidate Cfq_constr Cfq_itembase Cfq_txdb Counters Counting Frequent Item Item_info Itemset Level_stats List Logs Sel Seq Tx_db
