lib/mining/cap.mli: Bundle Cfq_constr Cfq_itembase Cfq_txdb Counters Frequent Io_stats Item Item_info Itemset Level_stats One_var Tx_db
