lib/mining/frequent.mli: Cfq_itembase Itemset
