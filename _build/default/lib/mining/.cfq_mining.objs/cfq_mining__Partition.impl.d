lib/mining/partition.ml: Array Cfq_itembase Cfq_txdb Frequent Hashtbl Io_stats Itemset List Option Transaction Trie Tx_db
