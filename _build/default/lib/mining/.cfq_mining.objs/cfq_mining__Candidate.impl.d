lib/mining/candidate.ml: Array Cfq_itembase Item Itemset
