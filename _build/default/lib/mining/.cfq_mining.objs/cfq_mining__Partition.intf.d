lib/mining/partition.mli: Cfq_txdb Frequent Io_stats Tx_db
