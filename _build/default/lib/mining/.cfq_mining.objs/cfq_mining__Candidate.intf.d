lib/mining/candidate.mli: Cfq_itembase Item Itemset
