lib/mining/jmax.mli: Attr Cfq_itembase Frequent Item Item_info
