lib/mining/trie.ml: Array Cfq_itembase Hashtbl Int Itemset List
