lib/mining/dhp.ml: Array Candidate Cfq_itembase Cfq_txdb Counters Counting Frequent Itemset List Transaction Tx_db
