lib/mining/apriori.mli: Cfq_itembase Cfq_txdb Counters Frequent Io_stats Item_info Level_stats Tx_db
