lib/mining/level_stats.ml: Format List
