lib/mining/counters.ml: Format
