lib/mining/apriori_tid.ml: Array Cfq_itembase Cfq_txdb Frequent Hashtbl Int Itemset List Seq Transaction Tx_db
