lib/mining/full_mat.ml: Array Bundle Cfq_constr Cfq_itembase Counters Counting Frequent Hashtbl Item_info Itemset List Option
