lib/mining/fp_growth.mli: Cfq_txdb Frequent Io_stats Tx_db
