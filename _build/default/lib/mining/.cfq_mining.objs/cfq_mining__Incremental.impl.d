lib/mining/incremental.ml: Array Cfq_itembase Cfq_txdb Float Frequent Hashtbl Io_stats Itemset List Option Transaction Trie Tx_db Vertical
