lib/mining/level_stats.mli: Format
