lib/mining/frequent.ml: Array Cfq_itembase Itemset List Seq
