lib/mining/vertical.ml: Array Cfq_itembase Cfq_txdb Frequent Hashtbl Itemset List Option Transaction Tx_db
