lib/mining/sampling.ml: Array Candidate Cfq_itembase Cfq_txdb Float Frequent Hashtbl Io_stats Itemset List Option Transaction Trie Tx_db Vertical
