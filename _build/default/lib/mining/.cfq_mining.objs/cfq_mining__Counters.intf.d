lib/mining/counters.mli: Format
