lib/mining/fp_growth.ml: Array Cfq_itembase Cfq_txdb Frequent Hashtbl Int Item Itemset List Option Transaction Tx_db
