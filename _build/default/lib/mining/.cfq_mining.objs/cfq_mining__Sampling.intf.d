lib/mining/sampling.mli: Cfq_itembase Cfq_txdb Frequent Io_stats Tx_db
