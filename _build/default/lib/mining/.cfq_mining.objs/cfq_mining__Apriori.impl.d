lib/mining/apriori.ml: Array Bundle Cap Cfq_constr Cfq_itembase Cfq_txdb Counters Frequent Hashtbl Itemset Level_stats List Option Transaction Tx_db
