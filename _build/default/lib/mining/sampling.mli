(** Sampling-based frequent-set mining (Toivonen, VLDB'96 — reference [24]
    of the paper), made exact by border expansion.

    A deterministic-hash sample of the database is mined in memory at a
    lowered threshold; the sample-frequent sets plus their {e negative
    border} (the minimal sets all of whose proper subsets are candidates)
    are then counted exactly in one full scan.  If some border set turns
    out globally frequent — Toivonen's "failure" case — the border is
    expanded around the newly found sets and re-counted, until the negative
    border of the result is certified infrequent; the final answer is
    therefore exact. *)

open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  rounds : int;  (** counting passes after the sampling pass (1 = no failure) *)
  sample_size : int;
}

(** [mine db io ~minsup ~universe_size ~sample_frac ()] with
    [sample_frac ∈ (0, 1]]; [lower] scales the in-sample threshold
    (default 0.8, i.e. 20% slack against sampling variance). *)
val mine :
  Tx_db.t ->
  Io_stats.t ->
  minsup:int ->
  universe_size:int ->
  sample_frac:float ->
  ?lower:float ->
  ?seed:int ->
  unit ->
  outcome

(** [negative_border ~universe_size frequent_sets] — the minimal itemsets
    outside the (downward-closed) collection; exposed for tests. *)
val negative_border :
  universe_size:int -> unit Cfq_itembase.Itemset.Hashtbl.t -> Cfq_itembase.Itemset.t list
