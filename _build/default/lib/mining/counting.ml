open Cfq_txdb

let count_shared db io families =
  let tries =
    List.map
      (fun (counters, cands) ->
        Counters.add_support_counted counters (Array.length cands);
        Trie.build cands)
      families
  in
  (match tries with
  | [] -> ()
  | _ ->
      Tx_db.iter_scan db io (fun tx ->
          let items = Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items in
          List.iter (fun trie -> Trie.count_tx trie items) tries));
  List.map Trie.counts tries

let count_level db io counters cands =
  match count_shared db io [ (counters, cands) ] with
  | [ counts ] -> counts
  | _ -> assert false

let count_level_parallel db io counters cands ~domains =
  if domains <= 1 then count_level db io counters cands
  else begin
    Counters.add_support_counted counters (Array.length cands);
    let trie = Trie.build cands in
    let n = Tx_db.size db in
    Io_stats.record_scan io ~pages:(Tx_db.pages db) ~tuples:n;
    let slice d =
      let lo = d * n / domains and hi = ((d + 1) * n / domains) - 1 in
      let local = Array.make (Array.length cands) 0 in
      for tid = lo to hi do
        Trie.count_tx_into trie local
          (Cfq_itembase.Itemset.unsafe_to_array (Tx_db.get db tid).Transaction.items)
      done;
      local
    in
    let workers =
      List.init (domains - 1) (fun d -> Domain.spawn (fun () -> slice (d + 1)))
    in
    let total = slice 0 in
    List.iter
      (fun w ->
        let local = Domain.join w in
        Array.iteri (fun i v -> total.(i) <- total.(i) + v) local)
      workers;
    total
  end
