open Cfq_itembase

type entry = {
  set : Itemset.t;
  support : int;
}

type t = {
  levels : entry array array;  (* levels.(k-1) = size-k entries *)
  table : int Itemset.Hashtbl.t;
}

let build levels =
  let table = Itemset.Hashtbl.create 1024 in
  Array.iter
    (Array.iter (fun e -> Itemset.Hashtbl.replace table e.set e.support))
    levels;
  { levels; table }

let empty = build [||]

let of_levels ls =
  (* drop trailing empty levels *)
  let arr = Array.of_list ls in
  let last = ref (Array.length arr) in
  while !last > 0 && Array.length arr.(!last - 1) = 0 do
    decr last
  done;
  build (Array.sub arr 0 !last)

let max_level t = Array.length t.levels
let level t k = if k >= 1 && k <= Array.length t.levels then t.levels.(k - 1) else [||]
let n_sets t = Itemset.Hashtbl.length t.table
let support t s = Itemset.Hashtbl.find_opt t.table s
let mem t s = Itemset.Hashtbl.mem t.table s

let l1_items t =
  let l1 = level t 1 in
  Itemset.of_array
    (Array.map
       (fun e ->
         match Itemset.min_item e.set with
         | Some i -> i
         | None -> invalid_arg "Frequent.l1_items: empty set at level 1")
       l1)

let iter f t = Array.iter (Array.iter f) t.levels
let fold f acc t = Array.fold_left (Array.fold_left f) acc t.levels
let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

let filter_entries p t =
  (* trailing levels may empty out: rebuild through of_levels *)
  of_levels
    (Array.to_list
       (Array.map (fun lvl -> Array.of_seq (Seq.filter p (Array.to_seq lvl))) t.levels))

let filter p t = filter_entries (fun e -> p e.set) t

let closed t =
  let l1 = l1_items t in
  fold
    (fun acc e ->
      let absorbed =
        Itemset.exists
          (fun i ->
            (not (Itemset.mem i e.set))
            && support t (Itemset.add i e.set) = Some e.support)
          l1
      in
      if absorbed then acc else e :: acc)
    [] t
  |> List.rev

let maximal t =
  (* a set is maximal iff none of its single-item extensions within L1 is
     frequent; checking against the next level suffices *)
  let l1 = l1_items t in
  fold
    (fun acc e ->
      let extendable =
        Itemset.exists
          (fun i -> (not (Itemset.mem i e.set)) && mem t (Itemset.add i e.set))
          l1
      in
      if extendable then acc else e :: acc)
    [] t
  |> List.rev
