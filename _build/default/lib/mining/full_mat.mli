(** The "full materialization" (FM) strategy of Section 6.2 — the paper's
    counterexample showing why ccc-optimality needs its second condition.

    FM first enumerates {e every} subset of the item universe and checks the
    constraints on each (up to [2^N] constraint-check invocations), then
    counts support only for the valid sets, in ascending cardinality.  It
    therefore counts very few sets (condition 1) while checking absurdly
    many (violating condition 2).  Only usable on small universes; provided
    for completeness, teaching and tests. *)

open Cfq_txdb
open Cfq_constr

(** [run db info io counters ~bundle ~minsup] mines the frequent valid sets.
    Raises [Invalid_argument] when the universe exceeds 20 items. *)
val run :
  Tx_db.t ->
  Io_stats.t ->
  Counters.t ->
  bundle:Bundle.t ->
  minsup:int ->
  Frequent.t
