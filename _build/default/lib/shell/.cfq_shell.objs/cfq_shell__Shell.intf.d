lib/shell/shell.mli: Cfq_core
