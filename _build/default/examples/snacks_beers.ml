(* The Section 2 example: "pairs of frequent sets of cheaper snack items and
   of more expensive beer items":

     {(S,T) | S.Type = {Snacks} & T.Type = {Beers} & max(S.Price) <= min(T.Price)}

   Types are categorical attribute values; we name a few for readability.

     dune exec examples/snacks_beers.exe *)

open Cfq_itembase
open Cfq_quest
open Cfq_core

let type_names = [| "Snacks"; "Beers"; "Dairy"; "Produce"; "Frozen" |]
let snacks = 0.
let beers = 1.

let () =
  let rng = Splitmix.create ~seed:7L in
  let n = 300 in
  let params = { (Quest_gen.scaled 5_000) with Quest_gen.n_items = n } in
  let db = Quest_gen.generate rng params in
  (* snacks cheap-ish, beers pricier, everything else in between *)
  let types = Array.init n (fun i -> float_of_int (i mod Array.length type_names)) in
  let prices =
    Array.init n (fun i ->
        match types.(i) with
        | 0. -> Dist.uniform rng ~lo:50. ~hi:400.
        | 1. -> Dist.uniform rng ~lo:200. ~hi:900.
        | _ -> Dist.uniform rng ~lo:0. ~hi:1000.)
  in
  let info = Item_gen.item_info ~prices ~types () in
  let q =
    Parser.parse
      (Printf.sprintf
         "{(S,T) | freq(S) >= 0.008 & freq(T) >= 0.008 & S.Type = {%g} & T.Type = {%g} \
          & max(S.Price) <= min(T.Price)}"
         snacks beers)
  in
  Printf.printf "query: %s\n\n" (Query.to_string q);
  let ctx = Exec.context db info in
  let r = Exec.run ~collect_pairs:true ctx q in
  let describe set =
    let items = Itemset.to_list set in
    String.concat "+"
      (List.map
         (fun i ->
           Printf.sprintf "%s#%d($%.0f)"
             type_names.(int_of_float (Item_info.value info Item_gen.type_attr i))
             i
             (Item_info.value info Item_gen.price_attr i))
         items)
  in
  Printf.printf "%d snack=>beer rules found; a sample:\n" r.Exec.pair_stats.Pairs.n_pairs;
  List.iteri
    (fun i (s, t) ->
      if i < 8 then
        Printf.printf "  %s  =>  %s\n"
          (describe s.Cfq_mining.Frequent.set)
          (describe t.Cfq_mining.Frequent.set))
    r.Exec.pairs;
  let baseline = Exec.run ~strategy:Plan.Apriori_plus ctx q in
  Printf.printf
    "\nccc effort: baseline counted %d sets / %d checks; optimizer %d sets / %d checks\n"
    (Exec.total_counted baseline) (Exec.total_checks baseline) (Exec.total_counted r)
    (Exec.total_checks r)
