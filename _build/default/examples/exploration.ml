(* The exploratory-mining workflow the paper's introduction argues for:
   generate (or load) data, ask the advisor what a query would cost, refine
   the constraints, and only then run — all through the same session object
   that backs `cfq repl`.

     dune exec examples/exploration.exe *)

let step session line =
  Printf.printf "cfq> %s\n" line;
  let r = Cfq_shell.Shell.eval session line in
  if r.Cfq_shell.Shell.output <> "" then print_endline r.Cfq_shell.Shell.output;
  print_newline ()

let () =
  let session = Cfq_shell.Shell.create () in
  List.iter (step session)
    [
      (* attach data *)
      "gen 4000 300";
      "stats";
      (* a first, vague idea: expensive things implied by cheap things *)
      "explain max(S.Price) <= min(T.Price)";
      (* what would it cost? what does the optimizer recommend? *)
      "advise freq(S) >= 0.01 & freq(T) >= 0.01 & max(S.Price) <= min(T.Price)";
      (* refine: focus the antecedent on cheap items only *)
      "run freq(S) >= 0.01 & freq(T) >= 0.01 & S.Price <= 200 & max(S.Price) <= min(T.Price)";
      "pairs 5";
      (* phase 2: turn the interesting pairs into ranked rules *)
      "set minconf 0.6";
      "rules freq(S) >= 0.01 & freq(T) >= 0.01 & S.Price <= 200 & max(S.Price) <= min(T.Price)";
      "quit";
    ]
