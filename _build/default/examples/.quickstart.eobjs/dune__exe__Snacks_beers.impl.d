examples/snacks_beers.ml: Array Cfq_core Cfq_itembase Cfq_mining Cfq_quest Dist Exec Item_gen Item_info Itemset List Pairs Parser Plan Printf Query Quest_gen Splitmix String
