examples/cheap_to_expensive.ml: Cfq_core Cfq_itembase Cfq_mining Cfq_quest Dist Exec Explain Item_gen Itemset List Optimizer Pairs Parser Plan Planted Printf Query Splitmix
