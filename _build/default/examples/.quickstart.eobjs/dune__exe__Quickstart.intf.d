examples/quickstart.mli:
