examples/cheap_to_expensive.mli:
