examples/exploration.ml: Cfq_shell List Printf
