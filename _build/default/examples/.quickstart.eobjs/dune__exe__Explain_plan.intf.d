examples/explain_plan.mli:
