examples/quickstart.ml: Cfq_core Cfq_itembase Cfq_mining Cfq_quest Cfq_txdb Exec Explain Item_gen List Parser Plan Printf Query Quest_gen Splitmix
