examples/rules_two_phase.ml: Cfq_core Cfq_itembase Cfq_quest Cfq_rules Exec Item_gen Item_info Itemset List Metric Pairs Parser Printf Query Quest_gen Rule Splitmix String
