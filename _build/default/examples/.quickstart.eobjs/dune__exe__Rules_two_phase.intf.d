examples/rules_two_phase.mli:
