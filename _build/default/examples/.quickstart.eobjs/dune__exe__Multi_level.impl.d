examples/multi_level.ml: Cfq_core Cfq_itembase Cfq_mining Cfq_quest Exec Explain Item_gen Item_info Itemset List Option Pairs Parser Printf Query Quest_gen Splitmix Taxonomy
