examples/multi_level.mli:
