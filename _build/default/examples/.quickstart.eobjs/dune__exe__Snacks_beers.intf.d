examples/snacks_beers.mli:
