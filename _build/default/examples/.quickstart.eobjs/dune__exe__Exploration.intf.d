examples/exploration.mli:
