examples/explain_plan.ml: Cfq_core Explain List Optimizer Parser Printf
