(* The introduction's motivating query — "purchase of cheaper items leads to
   the purchase of more expensive ones" — in its hardest form, with a
   non-quasi-succinct sum-vs-sum constraint that exercises the iterative
   Jmax/V^k pruning of Section 5.2:

     {(S,T) | sum(S.Price) <= sum(T.Price)}

   on a database with planted long patterns on the S side.

     dune exec examples/cheap_to_expensive.exe *)

open Cfq_itembase
open Cfq_quest
open Cfq_core

let () =
  let rng = Splitmix.create ~seed:11L in
  let n = 400 in
  let half = n / 2 in
  let pat lo len prob =
    Planted.pattern ~prob (Itemset.of_list (List.init len (fun i -> lo + i)))
  in
  let db =
    Planted.generate rng ~n_transactions:8_000 ~universe:(0, n) ~noise_len:5.
      [ pat 0 10 0.05; pat 30 5 0.07; pat half 5 0.06; pat (half + 30) 3 0.1 ]
  in
  (* S items expensive (mean 1000), T items cheaper (mean 500) *)
  let prices =
    Item_gen.split_prices rng ~n ~split:half
      ~low:(fun r -> Dist.normal_clamped r ~mean:1000. ~stddev:15. ~lo:0. ~hi:2000.)
      ~high:(fun r -> Dist.normal_clamped r ~mean:500. ~stddev:15. ~lo:0. ~hi:2000.)
  in
  let info = Item_gen.item_info ~prices () in
  let q =
    Parser.parse
      (Printf.sprintf
         "{(S,T) | freq(S) >= 0.03 & freq(T) >= 0.03 & S.Item <= %d & T.Item >= %d & \
          sum(S.Price) <= sum(T.Price)}"
         (half - 1) half)
  in
  let ctx = Exec.context db info in
  Printf.printf "query: %s\n\n" (Query.to_string q);
  let plan = Optimizer.plan ~nonneg:true q in
  Printf.printf "%s\n\n" (Explain.plan_to_string q plan);
  let cap = Exec.run ~strategy:Plan.Cap_one_var ctx q in
  let opt = Exec.run ~strategy:Plan.Optimized ctx q in
  Printf.printf
    "without Jmax/V^k pruning: %6d sets counted\nwith    Jmax/V^k pruning: %6d sets counted\n"
    (Exec.total_counted cap) (Exec.total_counted opt);
  Printf.printf "answers agree: %b (%d pairs)\n"
    (cap.Exec.pair_stats.Pairs.n_pairs = opt.Exec.pair_stats.Pairs.n_pairs)
    opt.Exec.pair_stats.Pairs.n_pairs;
  (* the deepest S level each strategy had to explore *)
  let deepest r = Cfq_mining.Frequent.max_level r.Exec.s.Exec.frequent in
  Printf.printf "deepest S level counted: CAP %d, optimized %d\n" (deepest cap)
    (deepest opt)
