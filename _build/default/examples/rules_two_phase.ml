(* The complete two-phase architecture: phase 1 computes the constrained
   frequent pairs (this paper), phase 2 turns them into rules S => T with
   support / confidence / lift (the surrounding system of [15]).

     dune exec examples/rules_two_phase.exe *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
open Cfq_rules

let () =
  let rng = Splitmix.create ~seed:5L in
  let n = 250 in
  let params = { (Quest_gen.scaled 6_000) with Quest_gen.n_items = n } in
  let db = Quest_gen.generate rng params in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let info = Item_gen.item_info ~prices () in

  (* "the purchase of cheaper items leads to the purchase of more expensive
     ones" — the introduction's CFQ, phase 1 *)
  let q =
    Parser.parse
      "{(S,T) | freq(S) >= 0.012 & freq(T) >= 0.012 & sum(S.Price) <= 300 & \
       avg(T.Price) >= 600}"
  in
  Printf.printf "phase 1 query: %s\n" (Query.to_string q);

  (* phase 2: rules at 30%% confidence and positive correlation only *)
  let rules, r = Rule.mine ~min_confidence:0.3 ~min_lift:1.0 (Exec.context db info) q in
  Printf.printf "phase 1: %d valid pairs; phase 2: %d rules pass conf >= 0.3, lift >= 1\n\n"
    r.Exec.pair_stats.Pairs.n_pairs (List.length rules);
  let describe set =
    String.concat "+"
      (List.map
         (fun i -> Printf.sprintf "#%d($%.0f)" i (Item_info.value info Item_gen.price_attr i))
         (Itemset.to_list set))
  in
  Printf.printf "top rules by confidence:\n";
  List.iteri
    (fun i rule ->
      if i < 10 then
        Printf.printf "  %-28s => %-28s conf=%.2f lift=%.2f sup=%.4f\n"
          (describe rule.Rule.antecedent)
          (describe rule.Rule.consequent)
          rule.Rule.metric.Metric.confidence rule.Rule.metric.Metric.lift
          rule.Rule.metric.Metric.support)
    rules
