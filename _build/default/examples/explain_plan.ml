(* EXPLAIN: what the Figure 7 query optimizer decides for various CFQs —
   which 2-var constraints are quasi-succinct, which get induced weaker
   constraints, where the iterative Jmax filter goes, and when the plan is
   certified ccc-optimal.

     dune exec examples/explain_plan.exe *)

open Cfq_core

let explain text =
  let q = Parser.parse text in
  let plan = Optimizer.plan ~nonneg:true q in
  Printf.printf "%s\n%s\n\n" text (Explain.plan_to_string q plan)

let () =
  List.iter explain
    [
      (* quasi-succinct: tight reduction, ccc-optimal *)
      "{(S,T) | max(S.Price) <= min(T.Price)}";
      (* all-domain constraints are quasi-succinct *)
      "{(S,T) | S.Type disjoint T.Type}";
      (* induced weaker constraint (Figure 4) *)
      "{(S,T) | sum(S.Price) <= max(T.Price)}";
      (* the hardest case: iterative Jmax/V^k pruning on the S lattice *)
      "{(S,T) | sum(S.Price) <= sum(T.Price)}";
      (* mirrored: the filter lands on the T lattice *)
      "{(S,T) | sum(T.Price) <= sum(S.Price)}";
      (* avg-vs-sum: V^k exists but cannot be used as a candidate filter *)
      "{(S,T) | avg(S.Price) <= sum(T.Price)}";
      (* mixed query with 1-var constraints *)
      "{(S,T) | S.Price >= 400 & T.Price <= 600 & S.Type = T.Type}";
      (* not certifiable: non-succinct 1-var constraint in the mix *)
      "{(S,T) | sum(S.Price) <= 100 & S.Type = T.Type}";
    ]
