(* Multi-level class constraints via an item taxonomy.

   The CFQ language's "class constraints" become ordinary domain constraints
   once the taxonomy's ancestor levels are materialised as categorical
   columns (Taxonomy.add_columns): Cat1 = top-level department, Cat2 = the
   leaf category.

     dune exec examples/multi_level.exe *)

open Cfq_itembase
open Cfq_quest
open Cfq_core

let () =
  let rng = Splitmix.create ~seed:3L in
  let n = 240 in
  (* a three-level taxonomy: one root, 3 departments, 9 leaf categories *)
  let taxonomy = Item_gen.random_taxonomy rng ~n_items:n ~branching:3 ~depth:3 in
  let db = Quest_gen.generate rng { (Quest_gen.scaled 4_000) with Quest_gen.n_items = n } in
  let info = Item_info.create ~universe_size:n in
  Item_info.add_column info Item_gen.price_attr
    (Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000.);
  Taxonomy.add_columns taxonomy info ~prefix:"Cat";
  Printf.printf "taxonomy: %d categories, depth %d\n" (Taxonomy.n_categories taxonomy)
    (Taxonomy.depth taxonomy);

  (* with a single root, level 2 is the department level: categories 1..3.
     Antecedents entirely in department 1, consequents in department 2, and
     the cross-department price comparison of Section 2 *)
  let q =
    Parser.parse
      "{(S,T) | freq(S) >= 0.008 & freq(T) >= 0.008 & S.Cat2 = {1} & T.Cat2 = {2} & \
       max(S.Price) <= min(T.Price)}"
  in
  Printf.printf "query: %s\n\n" (Query.to_string q);
  let ctx = Exec.context db info in
  let r = Exec.run ~collect_pairs:true ctx q in
  Printf.printf "%s\n" (Explain.result_to_string r);
  let department i =
    let cat2 = Option.get (Item_info.find_attr info "Cat2") in
    int_of_float (Item_info.value info cat2 i)
  in
  List.iteri
    (fun i (s, t) ->
      if i < 5 then
        Printf.printf "  dept%d:%s => dept%d:%s\n"
          (department (Option.get (Itemset.min_item s.Cfq_mining.Frequent.set)))
          (Itemset.to_string s.Cfq_mining.Frequent.set)
          (department (Option.get (Itemset.min_item t.Cfq_mining.Frequent.set)))
          (Itemset.to_string t.Cfq_mining.Frequent.set))
    r.Exec.pairs;

  (* drill down one level: same department, disjoint leaf categories *)
  let q2 =
    Parser.parse
      "{(S,T) | freq(S) >= 0.008 & freq(T) >= 0.008 & S.Cat2 = T.Cat2 & S.Cat3 \
       disjoint T.Cat3}"
  in
  let r2 = Exec.run ctx q2 in
  Printf.printf "\nsame department, disjoint leaf categories: %d pairs\n"
    r2.Exec.pair_stats.Pairs.n_pairs
