(* Bechamel micro-benchmarks of the core primitives: one Test.make per
   operation, all run in one pass with a short quota and reported as ns/run. *)

open Bechamel
open Cfq_itembase
open Cfq_constr
open Cfq_mining
open Cfq_quest

let itemset_fixtures () =
  let rng = Splitmix.create ~seed:99L in
  let random_set n =
    Itemset.of_array (Dist.sample_without_replacement rng ~n:1000 ~k:n)
  in
  (random_set 10, random_set 10, random_set 200)

let tests () =
  let a, b, big = itemset_fixtures () in
  let info =
    Item_gen.item_info
      ~prices:(Item_gen.uniform_prices (Splitmix.create ~seed:98L) ~n:1000 ~lo:0. ~hi:1000.)
      ()
  in
  let cands =
    Array.init 500 (fun i -> Itemset.of_list [ i mod 40; 40 + (i mod 30); 70 + (i mod 25) ])
  in
  let cands = Array.of_seq (Itemset.Set.to_seq (Itemset.Set.of_seq (Array.to_seq cands))) in
  let trie = Trie.build cands in
  let tx = Array.init 40 (fun i -> i * 3) in
  let pool = Array.map (fun c -> { Frequent.set = c; support = 10 }) cands in
  let prev = Array.map (fun e -> e.Frequent.set) pool in
  let tbl = Itemset.Hashtbl.create 1024 in
  Array.iter (fun s -> Itemset.Hashtbl.replace tbl s ()) prev;
  let l1 = Itemset.of_array (Array.init 100 (fun i -> i)) in
  let price = Item_gen.price_attr in
  let two = Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Min, price) in
  [
    Test.make ~name:"itemset-union" (Staged.stage (fun () -> Itemset.union a b));
    Test.make ~name:"itemset-inter" (Staged.stage (fun () -> Itemset.inter a b));
    Test.make ~name:"itemset-subset-big" (Staged.stage (fun () -> Itemset.subset a big));
    Test.make ~name:"itemset-hash" (Staged.stage (fun () -> Itemset.hash big));
    Test.make ~name:"trie-count-tx" (Staged.stage (fun () -> Trie.count_tx trie tx));
    Test.make ~name:"candidate-apriori-gen"
      (Staged.stage (fun () ->
           Candidate.apriori_gen ~prev ~prev_mem:(Itemset.Hashtbl.mem tbl)));
    Test.make ~name:"reduce-quasi-succinct"
      (Staged.stage (fun () ->
           Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1 two));
    Test.make ~name:"mgf-compile-bundle"
      (Staged.stage (fun () ->
           Bundle.compile ~nonneg:true info
             [
               One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 500.);
               One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 100.);
             ]));
    Test.make ~name:"item-info-sum"
      (Staged.stage (fun () -> Item_info.sum_of info price big));
  ]

(* counting backends, bit vectors and pair joins get their own fixtures *)
let tests_extra () =
  let rng = Splitmix.create ~seed:97L in
  let db =
    Quest_gen.generate rng { (Quest_gen.scaled 2000) with Quest_gen.n_items = 300 }
  in
  let io = Cfq_txdb.Io_stats.create () in
  let vertical = Vertical.build db io ~universe_size:300 in
  let probe = Itemset.of_list [ 3; 40; 77 ] in
  let a = Bitvec.of_itemset ~universe_size:1000 (Itemset.of_array (Array.init 100 (fun i -> i * 7))) in
  let b = Bitvec.of_itemset ~universe_size:1000 (Itemset.of_array (Array.init 100 (fun i -> i * 5))) in
  let info =
    Item_gen.item_info
      ~prices:(Item_gen.uniform_prices (Splitmix.create ~seed:96L) ~n:300 ~lo:0. ~hi:1000.)
      ()
  in
  let entries =
    Array.init 400 (fun i ->
        { Frequent.set = Itemset.of_list [ i mod 300 ]; support = 5 })
  in
  let minmax =
    Cfq_constr.Two_var.Agg2
      (Cfq_constr.Agg.Max, Item_gen.price_attr, Cfq_constr.Cmp.Le, Cfq_constr.Agg.Min,
       Item_gen.price_attr)
  in
  let form two_var () =
    Cfq_core.Pairs.form ~s_info:info ~t_info:info ~valid_s:entries ~valid_t:entries
      ~two_var ()
  in
  [
    Test.make ~name:"vertical-support" (Staged.stage (fun () -> Vertical.support vertical probe));
    Test.make ~name:"bitvec-inter-card" (Staged.stage (fun () -> Bitvec.inter_cardinal a b));
    Test.make ~name:"bitvec-union" (Staged.stage (fun () -> Bitvec.union a b));
    Test.make ~name:"pairs-sort-join-400x400" (Staged.stage (form [ minmax ]));
    Test.make ~name:"pairs-nested-loop-400x400"
      (Staged.stage
         (form
            [ Cfq_constr.Two_var.Set2 (Item_gen.price_attr, Cfq_constr.Two_var.Disjoint, Item_gen.price_attr) ]));
  ]

let run () =
  Printf.printf "\n=== Microbenchmarks (Bechamel, ns/run) ===\n%!";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let grouped = Test.make_grouped ~name:"cfq" ~fmt:"%s %s" (tests () @ tests_extra ()) in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let t = Cfq_report.Table.create [ "operation"; "ns/run" ] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some [ v ] -> Printf.sprintf "%.1f" v
        | Some _ | None -> "n/a"
      in
      Cfq_report.Table.add_row t [ name; ns ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Cfq_report.Table.print t
