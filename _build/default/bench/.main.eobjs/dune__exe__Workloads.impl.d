bench/workloads.ml: Cfq_core Cfq_itembase Cfq_quest Dist Exec Int64 Item_gen Itemset List Parser Planted Printf Query Quest_gen Splitmix Sys
