bench/main.mli:
