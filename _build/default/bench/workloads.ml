(* Workload builders for the paper's Section 7 experiments. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core

type scale = {
  n_tx : int;
  n_items : int;
  seed : int64;
}

(* The paper uses 100,000 transactions over 1,000 items; the default here is
   scaled down for a few-minute harness run.  FULL=1 restores paper scale. *)
let default_scale () =
  let full =
    match Sys.getenv_opt "FULL" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  { n_tx = (if full then 100_000 else 20_000); n_items = 1000; seed = 20260706L }

let quest_db scale =
  let rng = Splitmix.create ~seed:scale.seed in
  let params =
    { (Quest_gen.scaled scale.n_tx) with Quest_gen.n_items = scale.n_items }
  in
  Quest_gen.generate rng params

(* ------------------------------------------------------------------ *)
(* §7.1 — single quasi-succinct 2-var constraint over uniform prices.
   S is restricted to Price ∈ [s_lo, 1000], T to Price ∈ [0, v]; the
   x-axis of Figure 8(a) is the percentage overlap of the two ranges. *)

type fig8a = {
  ctx : Exec.ctx;
  query : float -> float -> Query.t;  (* s_lo -> v -> query *)
}

let fig8a_overlap ~s_lo ~v = 100. *. (v -. s_lo) /. (1000. -. s_lo)
let fig8a_v_for_overlap ~s_lo ~overlap_pct =
  s_lo +. (overlap_pct /. 100. *. (1000. -. s_lo))

let fig8a_workload scale =
  let db = quest_db scale in
  let rng = Splitmix.create ~seed:(Int64.add scale.seed 1L) in
  let prices = Item_gen.uniform_prices rng ~n:scale.n_items ~lo:0. ~hi:1000. in
  let info = Item_gen.item_info ~prices () in
  let query s_lo v =
    Parser.parse
      (Printf.sprintf
         "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= %g & T.Price <= %g \
          & max(S.Price) <= min(T.Price)}"
         s_lo v)
  in
  { ctx = Exec.context db info; query }

(* ------------------------------------------------------------------ *)
(* §7.2 — 1-var range constraints plus the 2-var S.Type = T.Type, with a
   controllable overlap between the S-side and T-side type sets. *)

type fig8b = {
  ctx : Exec.ctx;
  query : Query.t;
}

let fig8b_workload scale ~s_lo ~t_hi ~type_overlap =
  let db = quest_db scale in
  let rng = Splitmix.create ~seed:(Int64.add scale.seed 2L) in
  let prices = Item_gen.uniform_prices rng ~n:scale.n_items ~lo:0. ~hi:1000. in
  let types =
    Item_gen.banded_types rng ~prices ~s_lo ~t_hi ~n_types_per_side:50
      ~overlap:type_overlap
  in
  let info = Item_gen.item_info ~prices ~types () in
  let query =
    Parser.parse
      (Printf.sprintf
         "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= %g & T.Price <= %g \
          & S.Type = T.Type}"
         s_lo t_hi)
  in
  { ctx = Exec.context db info; query }

(* ------------------------------------------------------------------ *)
(* §7.3 — sum(S.Price) <= sum(T.Price) with planted long patterns so the
   S lattice reaches high cardinality under a low threshold.  S items are
   [0, n/2), T items [n/2, n); prices are normal with different means. *)

type fig73 = {
  ctx : Exec.ctx;
  query : Query.t;
  max_s_pattern : int;
}

let fig73_workload scale ~t_mean =
  let n = scale.n_items in
  let half = n / 2 in
  let rng = Splitmix.create ~seed:(Int64.add scale.seed 3L) in
  let pat lo len prob =
    Planted.pattern ~prob (Itemset.of_list (List.init len (fun i -> lo + i)))
  in
  let patterns =
    [
      (* S-side: nested long patterns, the largest of size 14 *)
      pat 0 14 0.03;
      pat 0 8 0.06;
      pat 20 6 0.05;
      pat 40 4 0.08;
      (* T-side patterns *)
      pat half 6 0.05;
      pat (half + 20) 4 0.08;
      pat (half + 40) 3 0.10;
    ]
  in
  let db =
    Planted.generate rng ~n_transactions:scale.n_tx ~universe:(0, n) ~noise_len:6.
      patterns
  in
  let prices =
    Item_gen.split_prices rng ~n ~split:half
      ~low:(fun r -> Dist.normal_clamped r ~mean:1000. ~stddev:10. ~lo:0. ~hi:2000.)
      ~high:(fun r -> Dist.normal_clamped r ~mean:t_mean ~stddev:10. ~lo:0. ~hi:2000.)
  in
  let info = Item_gen.item_info ~prices () in
  let query =
    Parser.parse
      (Printf.sprintf
         "{(S,T) | freq(S) >= 0.02 & freq(T) >= 0.02 & S.Item <= %d & T.Item >= %d & \
          sum(S.Price) <= sum(T.Price)}"
         (half - 1) half)
  in
  { ctx = Exec.context db info; query; max_s_pattern = 14 }
