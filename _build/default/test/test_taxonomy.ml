open Cfq_itembase
open Cfq_quest
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f

(* a small grocery-style taxonomy:
   0 = Food (root), 1 = Drinks (root)
   2 = Snacks <- 0, 3 = Dairy <- 0, 4 = Beer <- 1
   items: 0,1 -> Snacks; 2 -> Dairy; 3,4 -> Beer *)
let grocery () =
  Taxonomy.make ~parent:[| -1; -1; 0; 0; 1 |] ~item_category:[| 2; 2; 3; 4; 4 |]

let suite =
  [
    unit "paths and ancestors" (fun () ->
        let t = grocery () in
        Alcotest.(check (list int)) "snacks path" [ 0; 2 ] (Taxonomy.path_from_root t 2);
        Alcotest.(check (list int)) "ancestors root-last" [ 2; 0 ] (Taxonomy.ancestors t 2);
        Alcotest.(check (list int)) "root path" [ 1 ] (Taxonomy.path_from_root t 1);
        Alcotest.(check int) "depth" 2 (Taxonomy.depth t));
    unit "is_under" (fun () ->
        let t = grocery () in
        Alcotest.(check bool) "item 0 under Food" true (Taxonomy.is_under t ~category:0 0);
        Alcotest.(check bool) "item 0 under Snacks" true (Taxonomy.is_under t ~category:2 0);
        Alcotest.(check bool) "item 0 not under Drinks" false
          (Taxonomy.is_under t ~category:1 0);
        Alcotest.(check bool) "item 3 under Drinks" true (Taxonomy.is_under t ~category:1 3));
    unit "level columns" (fun () ->
        let t = grocery () in
        Alcotest.(check (array (float 0.))) "level 1 = root ancestors"
          [| 0.; 0.; 0.; 1.; 1. |]
          (Taxonomy.level_column t ~level:1);
        Alcotest.(check (array (float 0.))) "level 2 = leaf categories"
          [| 2.; 2.; 3.; 4.; 4. |]
          (Taxonomy.level_column t ~level:2);
        (* deeper levels clamp at the leaf *)
        Alcotest.(check (array (float 0.))) "level 5 clamps"
          [| 2.; 2.; 3.; 4.; 4. |]
          (Taxonomy.level_column t ~level:5));
    unit "validation" (fun () ->
        Alcotest.check_raises "cycle" (Invalid_argument "Taxonomy.make: cycle")
          (fun () -> ignore (Taxonomy.make ~parent:[| 1; 0 |] ~item_category:[| 0 |]));
        Alcotest.check_raises "bad parent" (Invalid_argument "Taxonomy.make: bad parent")
          (fun () -> ignore (Taxonomy.make ~parent:[| 5 |] ~item_category:[| 0 |]));
        Alcotest.check_raises "bad leaf"
          (Invalid_argument "Taxonomy.make: bad item category") (fun () ->
            ignore (Taxonomy.make ~parent:[| -1 |] ~item_category:[| 3 |])));
    unit "multi-level class constraints end to end" (fun () ->
        (* S must be all Food, T all Drinks, via the materialised columns *)
        let t = grocery () in
        let db =
          Helpers.db_of_lists
            [ [ 0; 1; 3 ]; [ 0; 1; 4 ]; [ 0; 2; 3 ]; [ 1; 3; 4 ]; [ 0; 1; 2 ] ]
        in
        let info = Item_info.create ~universe_size:5 in
        Item_info.add_column info (Attr.make "Price" Attr.Numeric)
          [| 10.; 20.; 30.; 40.; 50. |];
        Taxonomy.add_columns t info ~prefix:"Cat";
        let q =
          Parser.parse
            "{(S,T) | freq(S) >= 0.3 & freq(T) >= 0.3 & S.Cat1 = {0} & T.Cat1 = {1}}"
        in
        (match Validate.check ~s_info:info ~t_info:info q with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "taxonomy columns should validate");
        let r = Exec.run ~collect_pairs:true (Exec.context db info) q in
        Alcotest.(check bool) "some pairs" true (r.Exec.pair_stats.Pairs.n_pairs > 0);
        List.iter
          (fun (s, p) ->
            Itemset.iter
              (fun i ->
                Alcotest.(check bool) "S all food" true (Taxonomy.is_under t ~category:0 i))
              s.Cfq_mining.Frequent.set;
            Itemset.iter
              (fun i ->
                Alcotest.(check bool) "T all drinks" true
                  (Taxonomy.is_under t ~category:1 i))
              p.Cfq_mining.Frequent.set)
          r.Exec.pairs);
    unit "2-var class constraint across taxonomy levels" (fun () ->
        (* same root category: S.Cat1 = T.Cat1 as a 2-var set equality *)
        let t = grocery () in
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 3; 4 ]; [ 3; 4 ] ] in
        let info = Item_info.create ~universe_size:5 in
        Taxonomy.add_columns t info ~prefix:"Cat";
        let q = Parser.parse "{(S,T) | freq(S) >= 0.4 & freq(T) >= 0.4 & S.Cat1 = T.Cat1}" in
        let r = Exec.run ~collect_pairs:true (Exec.context db info) q in
        List.iter
          (fun (s, p) ->
            let cat set =
              Item_info.project info (Option.get (Item_info.find_attr info "Cat1")) set
            in
            Alcotest.(check bool) "same root category" true
              (Value_set.equal (cat s.Cfq_mining.Frequent.set) (cat p.Cfq_mining.Frequent.set)))
          r.Exec.pairs);
    Helpers.qtest ~count:80 "class-constraint queries match brute force"
      (QCheck2.Gen.pair Helpers.gen_db
         (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 2) (QCheck2.Gen.int_range 0 2)))
      (fun ((n, db), (lvl, cat)) ->
        Helpers.print_db (n, db) ^ Printf.sprintf " Cat%d={%d}" lvl cat)
      (fun ((n, db), (lvl, cat)) ->
        (* taxonomy: root 0; departments 1,2; items alternate departments *)
        let parent = [| -1; 0; 0 |] in
        let item_category = Array.init n (fun i -> 1 + (i mod 2)) in
        let taxonomy = Taxonomy.make ~parent ~item_category in
        let info = Item_info.create ~universe_size:n in
        Item_info.add_column info (Attr.make "Price" Attr.Numeric)
          (Array.init n (fun i -> float_of_int (10 * (i + 1))));
        Taxonomy.add_columns taxonomy info ~prefix:"Cat";
        let q =
          Parser.parse
            (Printf.sprintf
               "{(S,T) | freq(S) >= 0.2 & freq(T) >= 0.2 & S.Cat%d = {%d} & S.Cat2 \
                disjoint T.Cat2}"
               lvl cat)
        in
        let ctx = { Exec.db; s_info = info; t_info = info; nonneg = true } in
        let r = Exec.run ~collect_pairs:true ctx q in
        let brute = Helpers.brute_answer db ~n ~s_info:info ~t_info:info q in
        r.Exec.pair_stats.Cfq_core.Pairs.n_pairs = List.length brute);
    unit "random taxonomy is well-formed" (fun () ->
        let rng = Splitmix.create ~seed:33L in
        let t = Item_gen.random_taxonomy rng ~n_items:50 ~branching:3 ~depth:3 in
        Alcotest.(check int) "1 + 3 + 9 categories" 13 (Taxonomy.n_categories t);
        Alcotest.(check int) "items" 50 (Taxonomy.n_items t);
        Alcotest.(check int) "depth" 3 (Taxonomy.depth t);
        for i = 0 to 49 do
          (* every item sits under exactly one root-level child *)
          let under = ref 0 in
          for c = 1 to 3 do
            if Taxonomy.is_under t ~category:c i then incr under
          done;
          Alcotest.(check int) "one branch" 1 !under;
          Alcotest.(check bool) "under the root" true (Taxonomy.is_under t ~category:0 i)
        done);
  ]
