open Cfq_constr
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f

let parse = Parser.parse

(* the parser does not know attribute kinds; it defaults to Numeric *)
let ptyp = Cfq_itembase.Attr.make "Type" Cfq_itembase.Attr.Numeric

let suite =
  [
    unit "paper's introduction query" (fun () ->
        let q =
          parse
            "{(S, T) | freq(S) >= 0.01 & freq(T) >= 0.02 & sum(S.Price) <= 100 & \
             avg(T.Price) >= 200}"
        in
        Alcotest.(check (float 1e-9)) "s minsup" 0.01 q.Query.s_minsup;
        Alcotest.(check (float 1e-9)) "t minsup" 0.02 q.Query.t_minsup;
        Alcotest.(check bool) "s constraint" true
          (q.Query.s_constraints
          = [ One_var.Agg_cmp (Agg.Sum, Helpers.price, Cmp.Le, 100.) ]);
        Alcotest.(check bool) "t constraint" true
          (q.Query.t_constraints
          = [ One_var.Agg_cmp (Agg.Avg, Helpers.price, Cmp.Ge, 200.) ]);
        Alcotest.(check bool) "no 2-var" true (q.Query.two_var = []));
    unit "2-var aggregate comparison" (fun () ->
        let q = parse "sum(S.Price) <= avg(T.Price)" in
        Alcotest.(check bool) "two_var" true
          (q.Query.two_var
          = [ Two_var.Agg2 (Agg.Sum, Helpers.price, Cmp.Le, Agg.Avg, Helpers.price) ]));
    unit "2-var is normalised to S on the left" (fun () ->
        let q = parse "min(T.Price) >= max(S.Price)" in
        Alcotest.(check bool) "swapped" true
          (q.Query.two_var
          = [ Two_var.Agg2 (Agg.Max, Helpers.price, Cmp.Le, Agg.Min, Helpers.price) ]));
    unit "set operators between variables" (fun () ->
        let q = parse "S.Type = T.Type & S.Type disjoint T.Type" in
        Alcotest.(check int) "two constraints" 2 (List.length q.Query.two_var);
        Alcotest.(check bool) "eq" true
          (List.mem (Two_var.Set2 (ptyp, Two_var.Set_eq, ptyp)) q.Query.two_var);
        Alcotest.(check bool) "disjoint" true
          (List.mem
             (Two_var.Set2 (ptyp, Two_var.Disjoint, ptyp))
             q.Query.two_var));
    unit "T-side set operator swaps" (fun () ->
        let q = parse "T.Type subset S.Type" in
        Alcotest.(check bool) "superset on S" true
          (q.Query.two_var = [ Two_var.Set2 (ptyp, Two_var.Superset, ptyp) ]));
    unit "domain shorthands" (fun () ->
        let q = parse "S.Price >= 400 & T.Price <= 600" in
        Alcotest.(check bool) "min form" true
          (q.Query.s_constraints
          = [ One_var.Agg_cmp (Agg.Min, Helpers.price, Cmp.Ge, 400.) ]);
        Alcotest.(check bool) "max form" true
          (q.Query.t_constraints
          = [ One_var.Agg_cmp (Agg.Max, Helpers.price, Cmp.Le, 600.) ]));
    unit "constant value sets" (fun () ->
        let q = parse "S.Type = {2} & T.Type subset {1, 3}" in
        Alcotest.(check int) "eq gives two conds" 2 (List.length q.Query.s_constraints);
        Alcotest.(check int) "subset" 1 (List.length q.Query.t_constraints));
    unit "snacks-and-beers query from Section 2" (fun () ->
        let q =
          parse
            "{(S,T) | S.Type = {1} & T.Type = {2} & max(S.Price) <= min(T.Price)}"
        in
        Alcotest.(check int) "s" 2 (List.length q.Query.s_constraints);
        Alcotest.(check int) "t" 2 (List.length q.Query.t_constraints);
        Alcotest.(check int) "two" 1 (List.length q.Query.two_var));
    unit "count and cardinality atoms" (fun () ->
        let q = parse "count(S.Type) <= 1 & |T| <= 4" in
        Alcotest.(check bool) "count" true
          (q.Query.s_constraints = [ One_var.Agg_cmp (Agg.Count, ptyp, Cmp.Le, 1.) ]);
        Alcotest.(check bool) "card" true
          (q.Query.t_constraints = [ One_var.Card_cmp (Cmp.Le, 4) ]));
    unit "value membership atom" (fun () ->
        let q = parse "3 in S.Type & 1 in T.Type" in
        Alcotest.(check bool) "superset singleton" true
          (q.Query.s_constraints
          = [ One_var.Dom_superset (ptyp, Cfq_itembase.Value_set.singleton 3.) ]);
        Alcotest.(check int) "t side" 1 (List.length q.Query.t_constraints));
    unit "negative prices and floats lex correctly" (fun () ->
        let q = parse "sum(S.Price) <= 10.5" in
        Alcotest.(check bool) "10.5" true
          (q.Query.s_constraints = [ One_var.Agg_cmp (Agg.Sum, Helpers.price, Cmp.Le, 10.5) ]));
    unit "errors" (fun () ->
        let bad s =
          match Parser.parse_result s with
          | Ok _ -> Alcotest.fail ("expected parse error for " ^ s)
          | Error _ -> ()
        in
        bad "sum(S.Price) <= sum(S.Price)";
        bad "S.Type = ";
        bad "freq(X) >= 0.1";
        bad "min(S.Price)";
        bad "hello world";
        bad "{(S,T) | } trailing");
    Helpers.qtest ~count:300 "printing any query re-parses to the same semantics"
      (QCheck2.Gen.pair Helpers.gen_query (Helpers.gen_itemset 8))
      (fun (q, s) -> Query.to_string q ^ " on " ^ Cfq_itembase.Itemset.to_string s)
      (fun (q, set) ->
        (* Dom_not_superset has no concrete syntax; everything else printed
           by Query.pp must re-parse to an equivalent query *)
        let printable =
          List.for_all
            (function One_var.Dom_not_superset _ -> false | _ -> true)
            (q.Query.s_constraints @ q.Query.t_constraints)
        in
        if not printable then QCheck2.assume_fail ()
        else
          match Parser.parse_result (Query.to_string q) with
          | Error _ -> false
          | Ok q2 ->
              let info = Helpers.small_info 8 in
              let eval cs = List.for_all (fun c -> One_var.eval info c set) cs in
              let eval2 cs t =
                List.for_all
                  (fun c -> Two_var.eval ~s_info:info ~t_info:info c set t)
                  cs
              in
              let t = Cfq_itembase.Itemset.of_list [ 1; 3; 6 ] in
              eval q.Query.s_constraints = eval q2.Query.s_constraints
              && eval q.Query.t_constraints = eval q2.Query.t_constraints
              && eval2 q.Query.two_var t = eval2 q2.Query.two_var t
              && q.Query.s_minsup = q2.Query.s_minsup
              && q.Query.t_minsup = q2.Query.t_minsup);
    unit "pp round-trips through the parser" (fun () ->
        let q =
          parse
            "{(S,T) | freq(S) >= 0.05 & S.Price >= 400 & max(S.Price) <= min(T.Price)}"
        in
        let q2 = parse (Query.to_string q) in
        Alcotest.(check bool) "same two_var" true (q.Query.two_var = q2.Query.two_var);
        Alcotest.(check (float 1e-9)) "same minsup" q.Query.s_minsup q2.Query.s_minsup);
  ]
