(* Row-by-row verification of the paper's tables: the CAP classification of
   1-var constraints, Figure 2 (domain reductions), Figure 3 (min/max
   reductions in all four combinations and both directions), and Figure 4
   (induced weaker constraints).  These tests pin the published spec, while
   the property tests elsewhere check the semantic properties behind it. *)

open Cfq_itembase
open Cfq_constr

let unit name f = Alcotest.test_case name `Quick f
let price = Helpers.price
let typ = Helpers.typ
let vs l = Value_set.of_list l

(* classification expectations: (constraint, anti-monotone, succinct, monotone) *)
let one_var_rows =
  [
    (One_var.Dom_subset (typ, vs [ 1. ]), true, true, false);
    (One_var.Dom_superset (typ, vs [ 1. ]), false, true, true);
    (One_var.Dom_disjoint (typ, vs [ 1. ]), true, true, false);
    (One_var.Dom_intersect (typ, vs [ 1. ]), false, true, true);
    (One_var.Dom_not_superset (typ, vs [ 1. ]), true, true, false);
    (One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 5.), true, true, false);
    (One_var.Agg_cmp (Agg.Min, price, Cmp.Gt, 5.), true, true, false);
    (One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 5.), false, true, true);
    (One_var.Agg_cmp (Agg.Min, price, Cmp.Lt, 5.), false, true, true);
    (One_var.Agg_cmp (Agg.Min, price, Cmp.Eq, 5.), false, true, false);
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 5.), true, true, false);
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Lt, 5.), true, true, false);
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 5.), false, true, true);
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Gt, 5.), false, true, true);
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Eq, 5.), false, true, false);
    (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 5.), true, false, false);
    (One_var.Agg_cmp (Agg.Sum, price, Cmp.Ge, 5.), false, false, true);
    (One_var.Agg_cmp (Agg.Sum, price, Cmp.Eq, 5.), false, false, false);
    (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 5.), false, false, false);
    (One_var.Agg_cmp (Agg.Avg, price, Cmp.Ge, 5.), false, false, false);
    (One_var.Agg_cmp (Agg.Avg, price, Cmp.Eq, 5.), false, false, false);
    (One_var.Agg_cmp (Agg.Count, typ, Cmp.Le, 2.), true, false, false);
    (One_var.Agg_cmp (Agg.Count, typ, Cmp.Ge, 2.), false, false, true);
    (One_var.Card_cmp (Cmp.Le, 3), true, false, false);
    (One_var.Card_cmp (Cmp.Ge, 3), false, false, true);
    (One_var.Nonempty, false, true, true);
  ]

(* Figure 3 as published, plus the mirrored (>=) direction: for each
   (agg1, op, agg2), the expected (C1 comparison constant source,
   C2 comparison constant source) given L1S.A = {10, 40, 70} and
   L1T.B = {20, 30, 60} *)
let fig3_cases =
  (* (agg1, op, agg2, expected C1, expected C2) *)
  [
    (Agg.Min, Cmp.Le, Agg.Min,
     One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 60.),
     One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 10.));
    (Agg.Min, Cmp.Le, Agg.Max,
     One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 60.),
     One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 10.));
    (Agg.Max, Cmp.Le, Agg.Min,
     One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 60.),
     One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 10.));
    (Agg.Max, Cmp.Le, Agg.Max,
     One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 60.),
     One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 10.));
    (* mirrored direction: lower bounds come from min(L1T.B) = 20 and upper
       bounds from max(L1S.A) = 70 *)
    (Agg.Min, Cmp.Ge, Agg.Min,
     One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 20.),
     One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 70.));
    (Agg.Max, Cmp.Ge, Agg.Max,
     One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 20.),
     One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 70.));
    (Agg.Min, Cmp.Gt, Agg.Max,
     One_var.Agg_cmp (Agg.Min, price, Cmp.Gt, 20.),
     One_var.Agg_cmp (Agg.Max, price, Cmp.Lt, 70.));
    (Agg.Max, Cmp.Lt, Agg.Min,
     One_var.Agg_cmp (Agg.Max, price, Cmp.Lt, 60.),
     One_var.Agg_cmp (Agg.Min, price, Cmp.Gt, 10.));
  ]

(* fixture with controlled attribute values: items 0,1,2 are the S side
   (prices 10,40,70), items 3,4,5 the T side (prices 20,30,60) *)
let fig_info () =
  let info = Item_info.create ~universe_size:6 in
  Item_info.add_column info price [| 10.; 40.; 70.; 20.; 30.; 60. |];
  Item_info.add_column info typ [| 0.; 1.; 2.; 1.; 2.; 3. |];
  info

let l1_s = Itemset.of_list [ 0; 1; 2 ]
let l1_t = Itemset.of_list [ 3; 4; 5 ]

let reduce c =
  let info = fig_info () in
  Reduce.reduce ~s_info:info ~t_info:info ~l1_s ~l1_t c

let suite =
  [
    unit "CAP classification of every 1-var constraint form" (fun () ->
        List.iter
          (fun (c, am, succ, mono) ->
            let name = One_var.to_string c in
            Alcotest.(check bool) (name ^ " anti-monotone") am
              (One_var.is_anti_monotone ~nonneg:true c);
            Alcotest.(check bool) (name ^ " succinct") succ (One_var.is_succinct c);
            Alcotest.(check bool) (name ^ " monotone") mono
              (One_var.is_monotone ~nonneg:true c))
          one_var_rows);
    unit "anti-monotone and monotone are mutually exclusive here" (fun () ->
        List.iter
          (fun (c, am, _, mono) ->
            Alcotest.(check bool) (One_var.to_string c) false (am && mono))
          one_var_rows);
    unit "Figure 2: all five domain rows" (fun () ->
        (* S types: {0,1,2}; T types: {1,2,3} *)
        let check name op s_expect t_expect =
          let red = reduce (Two_var.Set2 (typ, op, typ)) in
          Alcotest.(check bool) (name ^ " C1") true (red.Reduce.s_conds = s_expect);
          Alcotest.(check bool) (name ^ " C2") true (red.Reduce.t_conds = t_expect)
        in
        let s_types = vs [ 0.; 1.; 2. ] and t_types = vs [ 1.; 2.; 3. ] in
        check "disjoint" Two_var.Disjoint
          [ One_var.Dom_not_superset (typ, t_types) ]
          [ One_var.Dom_not_superset (typ, s_types) ];
        check "intersects" Two_var.Intersect
          [ One_var.Dom_intersect (typ, t_types) ]
          [ One_var.Dom_intersect (typ, s_types) ];
        check "subset" Two_var.Subset
          [ One_var.Dom_subset (typ, t_types) ]
          [ One_var.Dom_intersect (typ, s_types) ];
        check "not-subset" Two_var.Not_subset
          [ One_var.Nonempty ]
          [ One_var.Dom_not_superset (typ, s_types) ];
        check "set-eq" Two_var.Set_eq
          [ One_var.Dom_subset (typ, t_types) ]
          [ One_var.Dom_subset (typ, s_types) ]);
    unit "Figure 3: every min/max combination, both directions" (fun () ->
        List.iter
          (fun (agg1, op, agg2, c1, c2) ->
            let red = reduce (Two_var.Agg2 (agg1, price, op, agg2, price)) in
            let name =
              Printf.sprintf "%s %s %s" (Agg.to_string agg1) (Cmp.to_string op)
                (Agg.to_string agg2)
            in
            Alcotest.(check bool) (name ^ " C1") true (red.Reduce.s_conds = [ c1 ]);
            Alcotest.(check bool) (name ^ " C2") true (red.Reduce.t_conds = [ c2 ]);
            Alcotest.(check bool) (name ^ " tight") true
              (red.Reduce.s_tight && red.Reduce.t_tight))
          fig3_cases);
    unit "Figure 4: all three published rows produce their induced forms" (fun () ->
        let check name c expect_s_cond expect_induced =
          let red = reduce c in
          Alcotest.(check bool) (name ^ " direct bound") true
            (red.Reduce.s_conds = [ expect_s_cond ]);
          Alcotest.(check bool) (name ^ " induced 2-var") true
            (Induce.weaken ~nonneg:true c = Some expect_induced)
        in
        (* avg(S.A) <= min(T.B): C1 = avg(CS) <= max(L1T) = 60; Figure 4's
           published succinct form min(CS) <= 60 is implied via induce_weaker *)
        check "avg<=min"
          (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Min, price))
          (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 60.))
          (Two_var.Agg2 (Agg.Min, price, Cmp.Le, Agg.Min, price));
        check "sum<=max"
          (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Max, price))
          (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 60.))
          (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Max, price));
        check "avg<=avg"
          (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Avg, price))
          (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 60.))
          (Two_var.Agg2 (Agg.Min, price, Cmp.Le, Agg.Max, price)));
    unit "Figure 4 S-conditions recover the published succinct forms" (fun () ->
        let published =
          [
            (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Min, price),
             One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 60.));
            (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Max, price),
             One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 60.));
            (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Avg, price),
             One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 60.));
          ]
        in
        List.iter
          (fun (c, expected) ->
            let red = reduce c in
            let induced =
              List.concat_map (One_var.induce_weaker ~nonneg:true) red.Reduce.s_conds
            in
            Alcotest.(check bool) (Two_var.to_string c) true (induced = [ expected ]))
          published);
    unit "sum bound on the providing side uses the positive sum" (fun () ->
        (* sum on the right: achievable upper bound is 20+30+60 = 110 *)
        let red = reduce (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Sum, price)) in
        Alcotest.(check bool) "C1 = max(CS) <= 110" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 110.) ]));
    unit "count reduction bounds by distinct values" (fun () ->
        (* count(S.Type) <= count(T.Type): T can offer at most 3 distinct *)
        let red = reduce (Two_var.Agg2 (Agg.Count, typ, Cmp.Le, Agg.Count, typ)) in
        Alcotest.(check bool) "C1 = count(CS.Type) <= 3" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Count, typ, Cmp.Le, 3.) ]);
        Alcotest.(check bool) "C2 = count(CT.Type) >= 1" true
          (red.Reduce.t_conds = [ One_var.Agg_cmp (Agg.Count, typ, Cmp.Ge, 1.) ]));
  ]
