open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let build db n =
  let io = Io_stats.create () in
  let v = Vertical.build db io ~universe_size:n in
  (v, io)

let suite =
  [
    unit "tid lists are sorted and correct" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 1 ]; [ 0; 2 ]; [ 1; 2 ] ] in
        let v, io = build db 3 in
        Alcotest.(check (array int)) "item 0" [| 0; 2 |] (Vertical.tids v 0);
        Alcotest.(check (array int)) "item 1" [| 0; 1; 3 |] (Vertical.tids v 1);
        Alcotest.(check (array int)) "item 2" [| 2; 3 |] (Vertical.tids v 2);
        Alcotest.(check (array int)) "unseen item" [||] (Vertical.tids v 5);
        Alcotest.(check int) "one scan" 1 (Io_stats.scans io));
    unit "empty set has full support" (fun () ->
        let db = Helpers.db_of_lists [ [ 0 ]; [ 1 ] ] in
        let v, _ = build db 2 in
        Alcotest.(check int) "n" 2 (Vertical.support v Itemset.empty));
    Helpers.qtest ~count:150 "vertical support equals horizontal counting"
      (QCheck2.Gen.pair Helpers.gen_db (Helpers.gen_itemset 9))
      (fun ((n, db), s) -> Helpers.print_db (n, db) ^ " set=" ^ Itemset.to_string s)
      (fun ((n, db), s) ->
        let v, _ = build db (max n 9) in
        Vertical.support v s = Helpers.support_of db s);
    Helpers.qtest ~count:100 "eclat mining equals apriori" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let v, _ = build db n in
        let eclat = Vertical.mine v ~minsup in
        let io = Io_stats.create () in
        let apriori = (Apriori.mine db (Helpers.small_info n) io ~minsup ()).Apriori.frequent in
        Frequent.n_sets eclat = Frequent.n_sets apriori
        && Frequent.fold
             (fun acc e -> acc && Frequent.support apriori e.Frequent.set = Some e.Frequent.support)
             true eclat);
    unit "supports batches" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1 ] ] in
        let v, _ = build db 2 in
        Alcotest.(check (array int)) "batch" [| 2; 3; 2 |]
          (Vertical.supports v
             [| Itemset.of_list [ 0 ]; Itemset.of_list [ 1 ]; Itemset.of_list [ 0; 1 ] |]));
  ]
