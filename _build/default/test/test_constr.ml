open Cfq_itembase
open Cfq_constr

let unit name f = Alcotest.test_case name `Quick f
let info = Helpers.small_info 8
let price = Helpers.price
let typ = Helpers.typ
let set l = Itemset.of_list l

let check_eval name c s expected =
  Alcotest.(check bool) name expected (One_var.eval info c s)

let gen_set = Helpers.gen_itemset 8

let print_cs (c, s) = One_var.to_string c ^ " on " ^ Itemset.to_string s

let suite =
  [
    unit "cmp eval" (fun () ->
        Alcotest.(check bool) "le" true (Cmp.eval Cmp.Le 1. 1.);
        Alcotest.(check bool) "lt" false (Cmp.eval Cmp.Lt 1. 1.);
        Alcotest.(check bool) "ne" true (Cmp.eval Cmp.Ne 1. 2.);
        Alcotest.(check bool) "flip" true (Cmp.eval (Cmp.flip Cmp.Le) 2. 1.));
    Helpers.qtest "cmp negate complements" (QCheck2.Gen.pair Helpers.gen_cmp
      (QCheck2.Gen.pair QCheck2.Gen.(map float_of_int (int_range 0 5))
         QCheck2.Gen.(map float_of_int (int_range 0 5))))
      (fun (op, (a, b)) -> Printf.sprintf "%s %g %g" (Cmp.to_string op) a b)
      (fun (op, (a, b)) -> Cmp.eval op a b = not (Cmp.eval (Cmp.negate op) a b));
    Helpers.qtest "cmp flip swaps operands" (QCheck2.Gen.pair Helpers.gen_cmp
      (QCheck2.Gen.pair QCheck2.Gen.(map float_of_int (int_range 0 5))
         QCheck2.Gen.(map float_of_int (int_range 0 5))))
      (fun (op, (a, b)) -> Printf.sprintf "%s %g %g" (Cmp.to_string op) a b)
      (fun (op, (a, b)) -> Cmp.eval op a b = Cmp.eval (Cmp.flip op) b a);
    unit "cmp string round trip" (fun () ->
        List.iter
          (fun op ->
            Alcotest.(check bool) "round trip" true
              (Cmp.of_string (Cmp.to_string op) = Some op))
          [ Cmp.Le; Cmp.Lt; Cmp.Ge; Cmp.Gt; Cmp.Eq; Cmp.Ne ]);
    unit "agg string round trip" (fun () ->
        List.iter
          (fun agg ->
            Alcotest.(check bool) "round trip" true
              (Agg.of_string (Agg.to_string agg) = Some agg))
          [ Agg.Min; Agg.Max; Agg.Sum; Agg.Avg; Agg.Count ]);
    unit "agg apply" (fun () ->
        (* prices in small_info: item i -> 10 * ((3i mod 7) + 1) *)
        let s = set [ 0; 1 ] in
        (* prices 10 and 40 *)
        Alcotest.(check (option (float 1e-9))) "min" (Some 10.)
          (Agg.apply Agg.Min info price s);
        Alcotest.(check (option (float 1e-9))) "max" (Some 40.)
          (Agg.apply Agg.Max info price s);
        Alcotest.(check (option (float 1e-9))) "sum" (Some 50.)
          (Agg.apply Agg.Sum info price s);
        Alcotest.(check (option (float 1e-9))) "avg" (Some 25.)
          (Agg.apply Agg.Avg info price s);
        Alcotest.(check (option (float 1e-9))) "count types" (Some 2.)
          (Agg.apply Agg.Count info typ s);
        Alcotest.(check (option (float 1e-9))) "empty" None
          (Agg.apply Agg.Sum info price Itemset.empty));
    unit "one_var domain eval" (fun () ->
        let v01 = Value_set.of_list [ 0.; 1. ] in
        check_eval "subset yes" (One_var.Dom_subset (typ, v01)) (set [ 0; 1; 4; 5 ]) true;
        check_eval "subset no" (One_var.Dom_subset (typ, v01)) (set [ 0; 2 ]) false;
        check_eval "superset yes" (One_var.Dom_superset (typ, v01)) (set [ 0; 1; 2 ]) true;
        check_eval "superset no" (One_var.Dom_superset (typ, v01)) (set [ 0 ]) false;
        check_eval "disjoint yes" (One_var.Dom_disjoint (typ, v01)) (set [ 2; 3 ]) true;
        check_eval "disjoint no" (One_var.Dom_disjoint (typ, v01)) (set [ 0; 2 ]) false;
        check_eval "intersect" (One_var.Dom_intersect (typ, v01)) (set [ 1; 2 ]) true;
        check_eval "not_superset yes" (One_var.Dom_not_superset (typ, v01)) (set [ 0 ]) true;
        check_eval "not_superset no" (One_var.Dom_not_superset (typ, v01))
          (set [ 0; 1 ]) false);
    unit "one_var card and nonempty" (fun () ->
        check_eval "card le" (One_var.Card_cmp (Cmp.Le, 2)) (set [ 1; 2 ]) true;
        check_eval "card lt" (One_var.Card_cmp (Cmp.Lt, 2)) (set [ 1; 2 ]) false;
        check_eval "nonempty" One_var.Nonempty (set [ 1 ]) true;
        Alcotest.(check bool) "empty fails nonempty" false
          (One_var.eval info One_var.Nonempty Itemset.empty));
    unit "classification: CAP tables" (fun () ->
        let am c = One_var.is_anti_monotone ~nonneg:true c in
        let mono c = One_var.is_monotone ~nonneg:true c in
        let succ = One_var.is_succinct in
        let vs = Value_set.of_list [ 1. ] in
        (* domain constraints: all succinct *)
        Alcotest.(check bool) "subset am" true (am (One_var.Dom_subset (typ, vs)));
        Alcotest.(check bool) "superset mono" true (mono (One_var.Dom_superset (typ, vs)));
        Alcotest.(check bool) "superset not am" false (am (One_var.Dom_superset (typ, vs)));
        Alcotest.(check bool) "disjoint am" true (am (One_var.Dom_disjoint (typ, vs)));
        Alcotest.(check bool) "intersect mono" true (mono (One_var.Dom_intersect (typ, vs)));
        Alcotest.(check bool) "not_superset am" true (am (One_var.Dom_not_superset (typ, vs)));
        List.iter
          (fun c -> Alcotest.(check bool) (One_var.to_string c ^ " succinct") true (succ c))
          [
            One_var.Dom_subset (typ, vs);
            One_var.Dom_superset (typ, vs);
            One_var.Dom_disjoint (typ, vs);
            One_var.Dom_intersect (typ, vs);
            One_var.Dom_not_superset (typ, vs);
          ];
        (* Lemma 1: min/max succinct, sum/avg not *)
        Alcotest.(check bool) "min succinct" true
          (succ (One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "max succinct" true
          (succ (One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 5.)));
        Alcotest.(check bool) "sum not succinct" false
          (succ (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "avg not succinct" false
          (succ (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 5.)));
        (* aggregate anti-monotonicity *)
        Alcotest.(check bool) "min>=c am" true
          (am (One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 5.)));
        Alcotest.(check bool) "max<=c am" true
          (am (One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "sum<=c am (nonneg)" true
          (am (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "sum<=c not am when values may be negative" false
          (One_var.is_anti_monotone ~nonneg:false
             (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "avg<=c not am" false
          (am (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 5.)));
        Alcotest.(check bool) "count<=c am" true
          (am (One_var.Agg_cmp (Agg.Count, typ, Cmp.Le, 1.))));
    Helpers.qtest "anti-monotone constraints propagate violation to supersets"
      (QCheck2.Gen.pair Helpers.gen_one_var gen_set) print_cs (fun (c, s) ->
        (not (One_var.is_anti_monotone ~nonneg:true c))
        || One_var.eval info c s
        ||
        (* find any superset and confirm it also violates *)
        let ok = ref true in
        for extra = 0 to 7 do
          if not (Itemset.mem extra s) then
            if One_var.eval info c (Itemset.add extra s) then ok := false
        done;
        !ok);
    Helpers.qtest "monotone constraints propagate satisfaction to supersets"
      (QCheck2.Gen.pair Helpers.gen_one_var gen_set) print_cs (fun (c, s) ->
        (not (One_var.is_monotone ~nonneg:true c))
        || (not (One_var.eval info c s))
        ||
        let ok = ref true in
        for extra = 0 to 7 do
          if not (Itemset.mem extra s) then
            if not (One_var.eval info c (Itemset.add extra s)) then ok := false
        done;
        !ok);
    Helpers.qtest "induced weaker constraints are implied"
      (QCheck2.Gen.pair Helpers.gen_one_var gen_set) print_cs (fun (c, s) ->
        (not (One_var.eval info c s))
        || List.for_all
             (fun w -> One_var.eval info w s)
             (One_var.induce_weaker ~nonneg:true c));
    unit "induced weaker forms" (fun () ->
        (* sum <= c induces max <= c; avg <= c induces min <= c *)
        Alcotest.(check bool) "sum" true
          (One_var.induce_weaker ~nonneg:true (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 9.))
          = [ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 9.) ]);
        Alcotest.(check bool) "avg" true
          (One_var.induce_weaker ~nonneg:true (One_var.Agg_cmp (Agg.Avg, price, Cmp.Le, 9.))
          = [ One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 9.) ]);
        Alcotest.(check bool) "sum not induced when negative allowed" true
          (One_var.induce_weaker ~nonneg:false (One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 9.))
          = []));
    unit "sel conj" (fun () ->
        let a = Sel.Cmp (price, Cmp.Ge, 10.) in
        Alcotest.(check bool) "true dropped" true (Sel.conj [ Sel.True; a ] = a);
        Alcotest.(check bool) "empty is true" true (Sel.conj [] = Sel.True));
  ]
