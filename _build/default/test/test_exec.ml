(* The golden equivalence property: all three strategies compute the same
   CFQ answer — checked against a brute-force evaluation of the query
   semantics on random databases and random constraint mixes. *)

open Cfq_itembase
open Cfq_core

let answer_of_result (r : Exec.result) =
  Helpers.sorted_pairs
    (List.map
       (fun (a, b) -> (a.Cfq_mining.Frequent.set, b.Cfq_mining.Frequent.set))
       r.Exec.pairs)

let run_strategy ctx q strategy =
  answer_of_result (Exec.run ~strategy ~collect_pairs:true ctx q)

let gen_case = QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db

let print_case (q, db) = Query.to_string q ^ " on " ^ Helpers.print_db db

let pairs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (s1, t1) (s2, t2) -> Itemset.equal s1 s2 && Itemset.equal t1 t2)
       a b

let suite =
  [
    Helpers.qtest ~count:250 "optimized answer equals the brute-force semantics"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
        in
        pairs_equal (run_strategy ctx q Plan.Optimized) brute);
    Helpers.qtest ~count:150 "apriori+ answer equals the brute-force semantics"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
        in
        pairs_equal (run_strategy ctx q Plan.Apriori_plus) brute);
    Helpers.qtest ~count:150 "cap-1var answer equals the brute-force semantics"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
        in
        pairs_equal (run_strategy ctx q Plan.Cap_one_var) brute);
    Helpers.qtest ~count:150
      "optimized strategy never counts more sets than the baseline's two sides"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let a = Exec.run ~strategy:Plan.Apriori_plus ctx q in
        let o = Exec.run ~strategy:Plan.Optimized ctx q in
        (* the baseline mines one full lattice; the optimized strategy mines
           two pruned ones, so compare against twice the baseline *)
        Exec.total_counted o <= (2 * Exec.total_counted a) + 2 * n);
    Helpers.qtest ~count:100 "optimized valid sets are a subset of the baseline's"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let a = Exec.run ~strategy:Plan.Apriori_plus ctx q in
        let o = Exec.run ~strategy:Plan.Optimized ctx q in
        let sets side =
          Itemset.Set.of_list
            (Array.to_list (Array.map (fun e -> e.Cfq_mining.Frequent.set) side))
        in
        Itemset.Set.subset (sets o.Exec.s.Exec.valid) (sets a.Exec.s.Exec.valid)
        && Itemset.Set.subset (sets o.Exec.t.Exec.valid) (sets a.Exec.t.Exec.valid));
    Alcotest.test_case "variables over different domains (Section 3)" `Quick
      (fun () ->
        (* S ranges over all ten items, T only over the first four; each
           domain carries its own Price column *)
        let db =
          Helpers.db_of_lists
            [ [ 0; 1; 5 ]; [ 0; 1; 6 ]; [ 2; 3; 7 ]; [ 2; 3; 8 ]; [ 0; 2; 9 ] ]
        in
        let open Cfq_itembase in
        let s_info = Item_info.create ~universe_size:10 in
        Item_info.add_column s_info Helpers.price (Array.init 10 (fun i -> float_of_int (100 * i)));
        let t_info = Item_info.create ~universe_size:4 in
        Item_info.add_column t_info Helpers.price (Array.init 4 (fun i -> float_of_int (10 * i)));
        let ctx = { Exec.db; s_info; t_info; nonneg = true } in
        let q =
          Parser.parse
            "{(S,T) | freq(S) >= 0.4 & freq(T) >= 0.4 & max(T.Price) <= min(S.Price)}"
        in
        let results =
          List.map
            (fun s -> Exec.run ~strategy:s ~collect_pairs:true ctx q)
            [ Plan.Apriori_plus; Plan.Cap_one_var; Plan.Optimized; Plan.Sequential_t_first ]
        in
        (match results with
        | base :: rest ->
            List.iter
              (fun r ->
                Alcotest.(check int) "pair count" base.Exec.pair_stats.Pairs.n_pairs
                  r.Exec.pair_stats.Pairs.n_pairs)
              rest
        | [] -> assert false);
        List.iter
          (fun r ->
            List.iter
              (fun (_, t) ->
                Alcotest.(check bool) "T within its domain" true
                  (Itemset.for_all (fun i -> i < 4) t.Cfq_mining.Frequent.set))
              r.Exec.pairs)
          results);
    Helpers.qtest ~count:80 "max_level caps the answer identically across strategies"
      (QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db)
      (fun (q, db) -> Query.to_string q ^ " on " ^ Helpers.print_db db)
      (fun (q, (n, db)) ->
        let q = { q with Query.max_level = Some 2 } in
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.brute_answer db ~n ~s_info:info ~t_info:info q
          |> List.filter (fun (s, t) ->
                 Itemset.cardinal s <= 2 && Itemset.cardinal t <= 2)
        in
        List.for_all
          (fun strategy ->
            (Exec.run ~strategy ctx q).Exec.pair_stats.Pairs.n_pairs
            = List.length brute)
          [ Plan.Apriori_plus; Plan.Optimized; Plan.Sequential_t_first ]);
    Alcotest.test_case "shared-lattice fast path is taken and noted" `Quick
      (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ] ] in
        let ctx = Exec.context db (Helpers.small_info 3) in
        (* symmetric sides, no reduction: one lattice *)
        let q = Parser.parse "freq(S) >= 0.3 & freq(T) >= 0.3" in
        let r = Exec.run ~strategy:Plan.Optimized ctx q in
        Alcotest.(check bool) "note present" true
          (List.exists
             (fun n -> Astring_contains.contains n "mined once")
             r.Exec.notes);
        (* asymmetric sides: no such note *)
        let q2 = Parser.parse "freq(S) >= 0.3 & freq(T) >= 0.3 & S.Price <= 40" in
        let r2 = Exec.run ~strategy:Plan.Optimized ctx q2 in
        Alcotest.(check bool) "no note" false
          (List.exists
             (fun n -> Astring_contains.contains n "mined once")
             r2.Exec.notes));
    Alcotest.test_case "explain renders every report section" `Quick (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ] ] in
        let ctx = Exec.context db (Helpers.small_info 3) in
        let q =
          Parser.parse "freq(S) >= 0.3 & freq(T) >= 0.3 & max(S.Price) <= min(T.Price)"
        in
        let r = Exec.run ctx q in
        let o = Explain.result_to_string r in
        List.iter
          (fun part ->
            Alcotest.(check bool) part true (Astring_contains.contains o part))
          [ "S lattice"; "T lattice"; "pairs:"; "io:"; "ccc:"; "time:" ];
        let p = Explain.plan_to_string q r.Exec.plan in
        Alcotest.(check bool) "plan mentions query" true
          (Astring_contains.contains p "max(S.Price)"));
    Helpers.qtest ~count:100 "pair statistics are consistent with collected pairs"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let r = Exec.run ~strategy:Plan.Optimized ~collect_pairs:true ctx q in
        r.Exec.pair_stats.Pairs.n_pairs = List.length r.Exec.pairs);
  ]
