open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let frequent_equal a b =
  let to_set f = Itemset.Set.of_list (List.map (fun e -> e.Frequent.set) (Frequent.to_list f)) in
  Itemset.Set.equal (to_set a) (to_set b)
  && Frequent.fold
       (fun acc e -> acc && Frequent.support b e.Frequent.set = Some e.Frequent.support)
       true a

let suite =
  [
    Helpers.qtest ~count:150 "trie counting equals naive subset counting"
      (QCheck2.Gen.pair Helpers.gen_db
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 10) (Helpers.gen_itemset 6)))
      (fun ((n, db), cands) ->
        Helpers.print_db (n, db) ^ " cands="
        ^ String.concat "," (List.map Itemset.to_string cands))
      (fun ((_, db), cands) ->
        (* the engines always dedupe candidates before counting *)
        let cands = Array.of_list (List.sort_uniq Itemset.compare cands) in
        let trie = Trie.build cands in
        for i = 0 to Tx_db.size db - 1 do
          Trie.count_tx trie (Itemset.unsafe_to_array (Tx_db.get db i).Transaction.items)
        done;
        let counts = Trie.counts trie in
        Array.for_all2
          (fun c cand -> c = Helpers.support_of db cand)
          counts cands);
    unit "trie with duplicate candidates counts each slot" (fun () ->
        let s = Itemset.of_list [ 1; 2 ] in
        let trie = Trie.build [| s; s |] in
        Trie.count_tx trie [| 0; 1; 2 |];
        (* duplicates share a terminal node: only the last registered slot
           is counted, which the engines never rely on (they dedupe) *)
        Alcotest.(check int) "total over slots" 1
          (Array.fold_left ( + ) 0 (Trie.counts trie)));
    unit "candidate pairs_all" (fun () ->
        let pairs = Candidate.pairs_all [| 3; 1; 2 |] in
        Alcotest.(check int) "C(3,2)" 3 (Array.length pairs);
        Array.iter
          (fun p -> Alcotest.(check int) "size 2" 2 (Itemset.cardinal p))
          pairs);
    unit "candidate pairs_with_witness" (fun () ->
        let pairs = Candidate.pairs_with_witness ~witnesses:[| 1 |] ~items:[| 1; 2; 3 |] in
        let set = Itemset.Set.of_list (Array.to_list pairs) in
        Alcotest.(check int) "two pairs" 2 (Itemset.Set.cardinal set);
        Alcotest.(check bool) "has {1,2}" true
          (Itemset.Set.mem (Itemset.of_list [ 1; 2 ]) set);
        Alcotest.(check bool) "no {2,3}" false
          (Itemset.Set.mem (Itemset.of_list [ 2; 3 ]) set));
    unit "apriori_gen joins and prunes" (fun () ->
        let prev =
          [| [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ]; [ 2; 4 ] |] |> Array.map Itemset.of_list
        in
        let tbl = Itemset.Hashtbl.create 8 in
        Array.iter (fun s -> Itemset.Hashtbl.replace tbl s ()) prev;
        let cands =
          Candidate.apriori_gen ~prev ~prev_mem:(Itemset.Hashtbl.mem tbl)
        in
        (* {1,2,3} survives; {2,3,4} pruned because {3,4} missing *)
        Alcotest.(check int) "one candidate" 1 (Array.length cands);
        Alcotest.(check bool) "is {1,2,3}" true
          (Itemset.equal cands.(0) (Itemset.of_list [ 1; 2; 3 ])));
    Helpers.qtest ~count:100 "apriori_gen = brute candidates"
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 12) (Helpers.gen_itemset 6))
      (fun sets -> String.concat "," (List.map Itemset.to_string sets))
      (fun sets ->
        (* normalise to a level: keep only size-2 sets, dedupe *)
        let prev =
          List.sort_uniq Itemset.compare (List.filter (fun s -> Itemset.cardinal s = 2) sets)
        in
        let tbl = Itemset.Hashtbl.create 8 in
        List.iter (fun s -> Itemset.Hashtbl.replace tbl s ()) prev;
        let got =
          Candidate.apriori_gen ~prev:(Array.of_list prev)
            ~prev_mem:(Itemset.Hashtbl.mem tbl)
          |> Array.to_list |> List.sort_uniq Itemset.compare
        in
        let expected =
          List.filter
            (fun c ->
              Itemset.cardinal c = 3
              &&
              let all = ref true in
              Itemset.iter_delete_one c (fun sub ->
                  if not (Itemset.Hashtbl.mem tbl sub) then all := false);
              !all)
            (Helpers.all_subsets 6)
        in
        List.length got = List.length expected
        && List.for_all2 Itemset.equal got (List.sort Itemset.compare expected));
    Helpers.qtest ~count:100 "apriori mining equals brute force" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let info = Helpers.small_info n in
        let io = Io_stats.create () in
        let outcome = Apriori.mine db info io ~minsup () in
        let brute =
          Frequent.of_levels
            (List.init n (fun i ->
                 Helpers.brute_frequent db ~n ~minsup
                 |> List.filter (fun s -> Itemset.cardinal s = i + 1)
                 |> List.map (fun s ->
                        { Frequent.set = s; support = Helpers.support_of db s })
                 |> Array.of_list))
        in
        frequent_equal outcome.Apriori.frequent brute);
    Helpers.qtest ~count:100 "one scan per level" Helpers.gen_db Helpers.print_db
      (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let info = Helpers.small_info n in
        let io = Io_stats.create () in
        let outcome = Apriori.mine db info io ~minsup () in
        Io_stats.scans io = List.length (Level_stats.rows outcome.Apriori.stats));
    Helpers.qtest ~count:100
      "CAP with an anti-monotone+succinct constraint counts only permitted items"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Max, Helpers.price, Cmp.Le, 40.) in
        let bundle = Bundle.compile ~nonneg:true info [ c ] in
        let io = Io_stats.create () in
        let state = Cap.create db info ~minsup bundle in
        let freq = Cap.run state io in
        (* every counted frequent set satisfies the constraint, and all
           valid frequent sets are present *)
        Frequent.fold (fun acc e -> acc && One_var.eval info c e.Frequent.set) true freq
        && List.for_all
             (fun s ->
               (not (One_var.eval info c s))
               || Helpers.support_of db s < minsup
               || Frequent.mem freq s)
             (Helpers.all_subsets n));
    Helpers.qtest ~count:100
      "CAP with a witness constraint finds every valid frequent set"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        (* min(S.Price) <= 20: succinct but not anti-monotone *)
        let c = One_var.Agg_cmp (Agg.Min, Helpers.price, Cmp.Le, 20.) in
        let bundle = Bundle.compile ~nonneg:true info [ c ] in
        let io = Io_stats.create () in
        let state = Cap.create db info ~minsup bundle in
        let freq = Cap.run state io in
        List.for_all
          (fun s ->
            (not (One_var.eval info c s))
            || Helpers.support_of db s < minsup
            || Frequent.mem freq s)
          (Helpers.all_subsets n));
    Helpers.qtest ~count:100 "CAP extra filter is honoured" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let state = Cap.create db info ~minsup (Bundle.unconstrained info) in
        (* anti-monotone filter: sum of prices <= 60 *)
        Cap.set_extra_filter state (fun s -> Item_info.sum_of info Helpers.price s <= 60.);
        let freq = Cap.run state io in
        Frequent.fold
          (fun acc e -> acc && Item_info.sum_of info Helpers.price e.Frequent.set <= 60.)
          true freq
        && List.for_all
             (fun s ->
               Item_info.sum_of info Helpers.price s > 60.
               || Helpers.support_of db s < minsup
               || Frequent.mem freq s)
             (Helpers.all_subsets n));
    unit "max_level caps the lattice" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
        let info = Helpers.small_info 3 in
        let io = Io_stats.create () in
        let outcome = Apriori.mine db info io ~max_level:2 ~minsup:2 () in
        Alcotest.(check int) "max level 2" 2 (Frequent.max_level outcome.Apriori.frequent));
    unit "frequent accessors" (fun () ->
        let f =
          Frequent.of_levels
            [
              [| { Frequent.set = Itemset.of_list [ 1 ]; support = 3 } |];
              [| { Frequent.set = Itemset.of_list [ 1; 2 ]; support = 2 } |];
              [||];
            ]
        in
        Alcotest.(check int) "max_level drops empty" 2 (Frequent.max_level f);
        Alcotest.(check int) "n_sets" 2 (Frequent.n_sets f);
        Alcotest.(check (option int)) "support" (Some 2)
          (Frequent.support f (Itemset.of_list [ 1; 2 ]));
        Alcotest.(check bool) "l1_items" true
          (Itemset.equal (Frequent.l1_items f) (Itemset.of_list [ 1 ]));
        let g = Frequent.filter (fun s -> Itemset.cardinal s = 1) f in
        Alcotest.(check int) "filtered" 1 (Frequent.n_sets g));
    unit "counters merge" (fun () ->
        let a = Counters.create () in
        let b = Counters.create () in
        Counters.add_support_counted a 5;
        Counters.add_constraint_checks b 7;
        Counters.merge a b;
        Alcotest.(check int) "support" 5 (Counters.support_counted a);
        Alcotest.(check int) "checks" 7 (Counters.constraint_checks a);
        Counters.reset a;
        Alcotest.(check int) "reset" 0 (Counters.support_counted a));
  ]
