open Cfq_itembase

module IS = Set.Make (Int)

let model s = IS.of_list (Itemset.to_list s)
let of_model m = Itemset.of_list (IS.elements m)

let gen_set =
  QCheck2.Gen.(
    let* l = list_size (int_range 0 12) (int_range 0 30) in
    return (Itemset.of_list l))

let gen_pair = QCheck2.Gen.pair gen_set gen_set
let print_pair (a, b) = Itemset.to_string a ^ " / " ^ Itemset.to_string b

let eq_model name op model_op =
  Helpers.qtest name gen_pair print_pair (fun (a, b) ->
      Itemset.equal (op a b) (of_model (model_op (model a) (model b))))

let unit name f = Alcotest.test_case name `Quick f

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let suite =
  [
    eq_model "union agrees with model" Itemset.union IS.union;
    eq_model "inter agrees with model" Itemset.inter IS.inter;
    eq_model "diff agrees with model" Itemset.diff IS.diff;
    Helpers.qtest "subset agrees with model" gen_pair print_pair (fun (a, b) ->
        Itemset.subset a b = IS.subset (model a) (model b));
    Helpers.qtest "disjoint agrees with model" gen_pair print_pair (fun (a, b) ->
        Itemset.disjoint a b = IS.disjoint (model a) (model b));
    Helpers.qtest "mem agrees with model" gen_set Itemset.to_string (fun s ->
        List.for_all (fun i -> Itemset.mem i s = IS.mem i (model s)) (List.init 32 Fun.id));
    Helpers.qtest "add/remove round-trip" gen_set Itemset.to_string (fun s ->
        let s' = Itemset.add 99 s in
        Itemset.mem 99 s' && Itemset.equal (Itemset.remove 99 s') s);
    Helpers.qtest "add is idempotent on members" gen_set Itemset.to_string (fun s ->
        Itemset.is_empty s
        ||
        let i = Itemset.get s 0 in
        Itemset.equal (Itemset.add i s) s);
    Helpers.qtest "of_array sorts and dedupes" gen_set Itemset.to_string (fun s ->
        let doubled = Array.append (Itemset.to_array s) (Itemset.to_array s) in
        Itemset.equal (Itemset.of_array doubled) s);
    Helpers.qtest "compare is a total order consistent with equal" gen_pair print_pair
      (fun (a, b) -> Itemset.compare a b = 0 = Itemset.equal a b);
    Helpers.qtest "hash respects equality" gen_set Itemset.to_string (fun s ->
        Itemset.hash s = Itemset.hash (Itemset.of_list (Itemset.to_list s)));
    unit "empty properties" (fun () ->
        check_bool "is_empty" true (Itemset.is_empty Itemset.empty);
        check_int "cardinal" 0 (Itemset.cardinal Itemset.empty);
        check_bool "subset of anything" true
          (Itemset.subset Itemset.empty (Itemset.of_list [ 1; 2 ])));
    unit "min/max item" (fun () ->
        let s = Itemset.of_list [ 5; 2; 9 ] in
        Alcotest.(check (option int)) "min" (Some 2) (Itemset.min_item s);
        Alcotest.(check (option int)) "max" (Some 9) (Itemset.max_item s);
        Alcotest.(check (option int)) "empty" None (Itemset.min_item Itemset.empty));
    unit "of_sorted_array rejects unsorted" (fun () ->
        Alcotest.check_raises "unsorted" (Invalid_argument
          "Itemset.of_sorted_array: not strictly increasing") (fun () ->
            ignore (Itemset.of_sorted_array [| 2; 1 |]));
        Alcotest.check_raises "duplicate" (Invalid_argument
          "Itemset.of_sorted_array: not strictly increasing") (fun () ->
            ignore (Itemset.of_sorted_array [| 1; 1 |])));
    unit "prefix_join basics" (fun () ->
        let j a b = Itemset.prefix_join (Itemset.of_list a) (Itemset.of_list b) in
        (match j [ 1; 2 ] [ 1; 3 ] with
        | Some s -> check_bool "join 12/13" true (Itemset.equal s (Itemset.of_list [ 1; 2; 3 ]))
        | None -> Alcotest.fail "expected join");
        check_bool "no join different prefix" true (j [ 1; 2 ] [ 2; 3 ] = None);
        check_bool "no join wrong order" true (j [ 1; 3 ] [ 1; 2 ] = None);
        check_bool "no join same set" true (j [ 1; 2 ] [ 1; 2 ] = None));
    Helpers.qtest "iter_subsets_k enumerates C(n,k) distinct subsets" gen_set
      Itemset.to_string (fun s ->
        let n = Itemset.cardinal s in
        List.for_all
          (fun k ->
            let seen = ref Itemset.Set.empty in
            Itemset.iter_subsets_k s k (fun sub ->
                assert (Itemset.cardinal sub = k);
                assert (Itemset.subset sub s);
                seen := Itemset.Set.add sub !seen);
            Itemset.Set.cardinal !seen = Cfq_mining.Jmax.binom n k)
          [ 0; 1; 2; min 3 n ]);
    Helpers.qtest "iter_delete_one yields all (n-1)-subsets" gen_set Itemset.to_string
      (fun s ->
        let seen = ref Itemset.Set.empty in
        Itemset.iter_delete_one s (fun sub -> seen := Itemset.Set.add sub !seen);
        Itemset.Set.cardinal !seen = Itemset.cardinal s
        && Itemset.Set.for_all
             (fun sub -> Itemset.cardinal sub = Itemset.cardinal s - 1)
             !seen);
    unit "powerset counts" (fun () ->
        let s = Itemset.of_list [ 1; 2; 3 ] in
        let n = ref 0 in
        Itemset.powerset s (fun _ -> incr n);
        check_int "2^3" 8 !n);
    Helpers.qtest "subset_of_array matches subset" gen_pair print_pair (fun (a, b) ->
        Itemset.subset_of_array a (Itemset.unsafe_to_array b) = Itemset.subset a b);
  ]
