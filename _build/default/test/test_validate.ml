open Cfq_constr
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f
let info = Helpers.small_info 6

let check q = Validate.check ~s_info:info ~t_info:info q

let errors_of q = match check q with Ok () -> [] | Error es -> es

let q_of_text text = Parser.parse text

let suite =
  [
    unit "well-formed queries validate" (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) text true (check (q_of_text text) = Ok ()))
          [
            "{(S,T) | freq(S) >= 0.1}";
            "sum(S.Price) <= 100 & avg(T.Price) >= 200";
            "S.Type = T.Type & max(S.Price) <= min(T.Price)";
            "count(S.Type) <= 1 & |T| <= 4";
            "S.Item <= 3 & T.Item >= 4";
          ]);
    unit "unknown attributes are reported" (fun () ->
        let es = errors_of (q_of_text "sum(S.Cost) <= 100") in
        Alcotest.(check int) "one error" 1 (List.length es);
        Alcotest.(check bool) "mentions Cost" true
          (Astring_contains.contains (List.hd es).Validate.reason "Cost"));
    unit "numeric aggregation over a categorical attribute is rejected" (fun () ->
        let es = errors_of (q_of_text "sum(S.Type) <= 3") in
        Alcotest.(check int) "one error" 1 (List.length es);
        Alcotest.(check bool) "mentions categorical" true
          (Astring_contains.contains (List.hd es).Validate.reason "categorical"));
    unit "count over a categorical attribute is fine" (fun () ->
        Alcotest.(check bool) "ok" true (check (q_of_text "count(S.Type) = 1") = Ok ()));
    unit "mixed-kind set comparison is rejected" (fun () ->
        let q =
          Query.make
            ~two_var:[ Two_var.Set2 (Helpers.price, Two_var.Set_eq, Helpers.typ) ]
            ()
        in
        let es = errors_of q in
        Alcotest.(check bool) "kind error present" true
          (List.exists
             (fun e -> Astring_contains.contains e.Validate.reason "different kinds")
             es));
    unit "all errors are collected, not just the first" (fun () ->
        let es = errors_of (q_of_text "sum(S.Cost) <= 1 & avg(T.Weight) >= 2") in
        Alcotest.(check int) "two errors" 2 (List.length es));
    unit "Item pseudo-attribute always resolves" (fun () ->
        Alcotest.(check bool) "ok" true
          (check (q_of_text "S.Item disjoint T.Item") = Ok ()));
    unit "error order follows the query" (fun () ->
        match errors_of (q_of_text "min(S.Bad1) >= 1 & max(T.Bad2) <= 2") with
        | [ e1; e2 ] ->
            Alcotest.(check bool) "first is S" true
              (Astring_contains.contains e1.Validate.where "Bad1");
            Alcotest.(check bool) "second is T" true
              (Astring_contains.contains e2.Validate.where "Bad2")
        | _ -> Alcotest.fail "expected two errors");
  ]
