open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let frequent_sets f =
  Itemset.Set.of_list (List.map (fun e -> e.Frequent.set) (Frequent.to_list f))

let suite =
  [
    Helpers.qtest ~count:80 "dovetailed lattices equal two solo runs" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup_s = max 1 (Tx_db.size db / 4) in
        let minsup_t = max 1 (Tx_db.size db / 6) in
        let bundle () = Bundle.unconstrained info in
        let io = Io_stats.create () in
        let s = Cap.create db info ~minsup:minsup_s (bundle ()) in
        let t = Cap.create db info ~minsup:minsup_t (bundle ()) in
        let fs, ft = Dovetail.run io ~s ~t () in
        let io2 = Io_stats.create () in
        let solo_s = Cap.run (Cap.create db info ~minsup:minsup_s (bundle ())) io2 in
        let solo_t = Cap.run (Cap.create db info ~minsup:minsup_t (bundle ())) io2 in
        Itemset.Set.equal (frequent_sets fs) (frequent_sets solo_s)
        && Itemset.Set.equal (frequent_sets ft) (frequent_sets solo_t));
    Helpers.qtest ~count:80 "dovetailing shares scans between the lattices"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 4) in
        let io = Io_stats.create () in
        let s = Cap.create db info ~minsup (Bundle.unconstrained info) in
        let t = Cap.create db info ~minsup (Bundle.unconstrained info) in
        let fs, ft = Dovetail.run io ~s ~t () in
        (* identical sides advance in lock step: one scan per level, not two *)
        Io_stats.scans io = max (Frequent.max_level fs + 1) 1
        || Io_stats.scans io = Frequent.max_level fs
        || Io_stats.scans io = Frequent.max_level ft);
    unit "after_l1 fires exactly once with both L1s" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ] ] in
        let info = Helpers.small_info 3 in
        let io = Io_stats.create () in
        let s = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let t = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let fired = ref 0 in
        let seen = ref (Itemset.empty, Itemset.empty) in
        let _ =
          Dovetail.run io ~s ~t
            ~after_l1:(fun ~l1_s ~l1_t ->
              incr fired;
              seen := (l1_s, l1_t))
            ()
        in
        Alcotest.(check int) "once" 1 !fired;
        let l1_s, l1_t = !seen in
        Alcotest.(check bool) "l1 = {0,1}" true
          (Itemset.equal l1_s (Itemset.of_list [ 0; 1 ]) && Itemset.equal l1_t l1_s));
    unit "level hooks observe every absorbed level" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1 ] ] in
        let info = Helpers.small_info 3 in
        let io = Io_stats.create () in
        let s = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let t = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let s_levels = ref [] and t_levels = ref [] in
        let _ =
          Dovetail.run io ~s ~t
            ~on_s_level:(fun k _ -> s_levels := k :: !s_levels)
            ~on_t_level:(fun k _ -> t_levels := k :: !t_levels)
            ()
        in
        Alcotest.(check (list int)) "s levels" [ 1; 2; 3 ] (List.rev !s_levels);
        Alcotest.(check (list int)) "t levels" [ 1; 2; 3 ] (List.rev !t_levels));
    unit "constraints injected after level 1 prune the other levels" (fun () ->
        let db =
          Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 2; 3 ]; [ 2; 3 ]; [ 0; 2 ] ]
        in
        let info = Helpers.small_info 4 in
        let io = Io_stats.create () in
        let s = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let t = Cap.create db info ~minsup:2 (Bundle.unconstrained info) in
        let fs, _ =
          Dovetail.run io ~s ~t
            ~after_l1:(fun ~l1_s:_ ~l1_t:_ ->
              (* keep only items 0 and 1 on the S side *)
              Cap.add_constraints ~nonneg:true s
                [ One_var.Dom_subset (Attr.self, Value_set.of_list [ 0.; 1. ]) ])
            ()
        in
        Frequent.iter
          (fun e ->
            if Itemset.cardinal e.Frequent.set >= 2 then
              Alcotest.(check bool) "only 01 pair survives" true
                (Itemset.equal e.Frequent.set (Itemset.of_list [ 0; 1 ])))
          fs);
    unit "different databases are rejected" (fun () ->
        let db1 = Helpers.db_of_lists [ [ 0 ] ] in
        let db2 = Helpers.db_of_lists [ [ 0 ] ] in
        let info = Helpers.small_info 2 in
        let s = Cap.create db1 info ~minsup:1 (Bundle.unconstrained info) in
        let t = Cap.create db2 info ~minsup:1 (Bundle.unconstrained info) in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Dovetail.run: the two lattices must share one database")
          (fun () -> ignore (Dovetail.run (Io_stats.create ()) ~s ~t ())));
  ]
