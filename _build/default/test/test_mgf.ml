open Cfq_itembase
open Cfq_constr

let unit name f = Alcotest.test_case name `Quick f
let info = Helpers.small_info 8
let price = Helpers.price
let typ = Helpers.typ

(* succinct constraints whose MGF must coincide exactly with eval *)
let gen_exact_mgf =
  QCheck2.Gen.(
    oneof
      [
        (let* vs = Helpers.gen_value_set in
         oneofl
           [
             One_var.Dom_subset (typ, vs);
             One_var.Dom_superset (typ, vs);
             One_var.Dom_disjoint (typ, vs);
             One_var.Dom_intersect (typ, vs);
           ]);
        (let* agg = Helpers.gen_minmax in
         let* op = oneofl [ Cmp.Le; Cmp.Lt; Cmp.Ge; Cmp.Gt; Cmp.Eq ] in
         let* c = Helpers.gen_price_const in
         return (One_var.Agg_cmp (agg, price, op, c)));
      ])

let print_cs (c, s) = One_var.to_string c ^ " on " ^ Itemset.to_string s

let suite =
  [
    Helpers.qtest ~count:500 "MGF satisfaction coincides with constraint evaluation"
      (QCheck2.Gen.pair gen_exact_mgf (Helpers.gen_itemset 8))
      print_cs
      (fun (c, s) ->
        match Mgf.of_one_var c with
        | None -> QCheck2.assume_fail ()
        | Some m -> Mgf.satisfied info m s = One_var.eval info c s);
    Helpers.qtest "every succinct min/max or domain constraint except \
                   not-superset has an MGF" Helpers.gen_one_var One_var.to_string
      (fun c ->
        match c with
        | One_var.Dom_not_superset _ -> Mgf.of_one_var c = None
        | One_var.Agg_cmp (_, _, Cmp.Ne, _) -> Mgf.of_one_var c = None
        | _ -> not (One_var.is_succinct c) || Mgf.of_one_var c <> None);
    Helpers.qtest "non-succinct constraints have no MGF" Helpers.gen_one_var
      One_var.to_string (fun c ->
        One_var.is_succinct c || Mgf.of_one_var c = None);
    unit "combine intersects universes and joins requirements" (fun () ->
        let m1 =
          Option.get (Mgf.of_one_var (One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 40.)))
        in
        let m2 =
          Option.get (Mgf.of_one_var (One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 20.)))
        in
        let m = Mgf.combine m1 m2 in
        Alcotest.(check int) "one requirement" 1 (List.length m.Mgf.requires);
        (* universe: price <= 40 *)
        Alcotest.(check bool) "item 0 permitted (price 10)" true
          (Mgf.permits_item info m 0);
        (* item 2 has price 10*((6 mod 7)+1) = 70 *)
        Alcotest.(check bool) "item 2 rejected (price 70)" false
          (Mgf.permits_item info m 2));
    unit "requires_witness" (fun () ->
        let m =
          Option.get (Mgf.of_one_var (One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 10.)))
        in
        (* price 10 is item 0's *)
        Alcotest.(check bool) "with witness" true
          (Mgf.requires_witness info m (Itemset.of_list [ 0; 1 ]));
        Alcotest.(check bool) "without witness" false
          (Mgf.requires_witness info m (Itemset.of_list [ 1 ])));
    unit "trivial mgf" (fun () ->
        Alcotest.(check bool) "is_trivial" true (Mgf.is_trivial Mgf.trivial);
        Alcotest.(check bool) "permits anything" true (Mgf.permits_item info Mgf.trivial 3);
        Alcotest.(check bool) "nonempty has trivial mgf" true
          (Mgf.of_one_var One_var.Nonempty = Some Mgf.trivial));
    Helpers.qtest "combine_all equals iterated combine"
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 3) gen_exact_mgf)
      (fun cs -> String.concat " & " (List.map One_var.to_string cs))
      (fun cs ->
        let ms = List.filter_map Mgf.of_one_var cs in
        let m = Mgf.combine_all ms in
        List.for_all
          (fun s ->
            Mgf.satisfied info m s
            = List.for_all (fun mi -> Mgf.satisfied info mi s) ms)
          (Helpers.all_subsets 6));
  ]
