open Cfq_constr
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f
let price = Helpers.price

let plan ?strategy s = Optimizer.plan ?strategy ~nonneg:true (Parser.parse s)

let suite =
  [
    unit "quasi-succinct constraints get the tight reduction" (fun () ->
        let p = plan "max(S.Price) <= min(T.Price)" in
        match p.Plan.handlings with
        | [ h ] ->
            Alcotest.(check bool) "qs" true h.Plan.quasi_succinct;
            Alcotest.(check bool) "no jmax" true
              ((not h.Plan.jmax_on_s) && not h.Plan.jmax_on_t);
            Alcotest.(check bool) "ccc-optimal" true p.Plan.ccc_optimal
        | _ -> Alcotest.fail "one handling expected");
    unit "sum-vs-sum gets the iterative filter on S" (fun () ->
        let p = plan "sum(S.Price) <= sum(T.Price)" in
        match p.Plan.handlings with
        | [ h ] ->
            Alcotest.(check bool) "not qs" false h.Plan.quasi_succinct;
            Alcotest.(check bool) "jmax on S" true h.Plan.jmax_on_s;
            Alcotest.(check bool) "no jmax on T" false h.Plan.jmax_on_t;
            Alcotest.(check bool) "not ccc-optimal" false p.Plan.ccc_optimal
        | _ -> Alcotest.fail "one handling expected");
    unit "mirrored sum constraint filters T" (fun () ->
        let p = plan "sum(T.Price) <= sum(S.Price)" in
        (* normalised as sum(S) >= sum(T) *)
        match p.Plan.handlings with
        | [ h ] ->
            Alcotest.(check bool) "jmax on T" true h.Plan.jmax_on_t;
            Alcotest.(check bool) "no jmax on S" false h.Plan.jmax_on_s
        | _ -> Alcotest.fail "one handling expected");
    unit "max-vs-sum is filterable, min-vs-sum is not" (fun () ->
        let p1 = plan "max(S.Price) <= sum(T.Price)" in
        let p2 = plan "min(S.Price) <= sum(T.Price)" in
        Alcotest.(check bool) "max filterable" true
          (List.exists (fun h -> h.Plan.jmax_on_s) p1.Plan.handlings);
        Alcotest.(check bool) "min not (monotone, unsound to prune)" false
          (List.exists (fun h -> h.Plan.jmax_on_s) p2.Plan.handlings));
    unit "avg-vs-sum records the note about the missing filter" (fun () ->
        let p = plan "avg(S.Price) <= sum(T.Price)" in
        Alcotest.(check bool) "no filter" false
          (List.exists (fun h -> h.Plan.jmax_on_s) p.Plan.handlings);
        Alcotest.(check bool) "note" true (p.Plan.notes <> []));
    unit "sum-vs-max induces Figure 4's weaker constraint" (fun () ->
        let p = plan "sum(S.Price) <= max(T.Price)" in
        match p.Plan.handlings with
        | [ h ] ->
            Alcotest.(check bool) "induced" true
              (h.Plan.induced
              = Some (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Max, price)))
        | _ -> Alcotest.fail "one handling expected");
    unit "negative values disable the sum filter" (fun () ->
        let p =
          Optimizer.plan ~nonneg:false (Parser.parse "sum(S.Price) <= sum(T.Price)")
        in
        Alcotest.(check bool) "no filter" false
          (List.exists (fun h -> h.Plan.jmax_on_s) p.Plan.handlings));
    unit "ccc-optimality certification" (fun () ->
        (* succinct 1-var + quasi-succinct 2-var: certified *)
        Alcotest.(check bool) "certified" true
          (plan "S.Price >= 400 & T.Price <= 600 & S.Type = T.Type").Plan.ccc_optimal;
        (* sum 1-var constraint: not succinct, not certified *)
        Alcotest.(check bool) "sum 1-var" false
          (plan "sum(S.Price) <= 100 & S.Type = T.Type").Plan.ccc_optimal;
        (* baseline never certified *)
        Alcotest.(check bool) "apriori+" false
          (plan ~strategy:Plan.Apriori_plus "S.Type = T.Type").Plan.ccc_optimal;
        (* CAP certified only without 2-var constraints *)
        Alcotest.(check bool) "cap no 2var" true
          (plan ~strategy:Plan.Cap_one_var "S.Price >= 400").Plan.ccc_optimal;
        Alcotest.(check bool) "cap with 2var" false
          (plan ~strategy:Plan.Cap_one_var "S.Type = T.Type").Plan.ccc_optimal);
    unit "plan pretty-printing mentions the strategy" (fun () ->
        let p = plan "sum(S.Price) <= sum(T.Price)" in
        let s = Format.asprintf "%a" Plan.pp p in
        Alcotest.(check bool) "mentions optimized" true
          (Astring_contains.contains s "optimized");
        Alcotest.(check bool) "mentions Jmax" true (Astring_contains.contains s "Jmax"));
  ]
