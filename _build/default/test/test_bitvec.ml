open Cfq_itembase

let unit name f = Alcotest.test_case name `Quick f

let n = 100
let gen_set = Helpers.gen_itemset 9
let bv s = Bitvec.of_itemset ~universe_size:n s
let pair_print (a, b) = Itemset.to_string a ^ " / " ^ Itemset.to_string b

let agree name bop iop =
  Helpers.qtest name (QCheck2.Gen.pair gen_set gen_set) pair_print (fun (a, b) ->
      Itemset.equal (Bitvec.to_itemset (bop (bv a) (bv b))) (iop a b))

let suite =
  [
    Helpers.qtest "of_itemset/to_itemset round-trip" gen_set Itemset.to_string (fun s ->
        Itemset.equal (Bitvec.to_itemset (bv s)) s);
    agree "union agrees with itemset" Bitvec.union Itemset.union;
    agree "inter agrees with itemset" Bitvec.inter Itemset.inter;
    agree "diff agrees with itemset" Bitvec.diff Itemset.diff;
    Helpers.qtest "subset/disjoint/equal agree" (QCheck2.Gen.pair gen_set gen_set)
      pair_print (fun (a, b) ->
        Bitvec.subset (bv a) (bv b) = Itemset.subset a b
        && Bitvec.disjoint (bv a) (bv b) = Itemset.disjoint a b
        && Bitvec.equal (bv a) (bv b) = Itemset.equal a b);
    Helpers.qtest "cardinal and inter_cardinal" (QCheck2.Gen.pair gen_set gen_set)
      pair_print (fun (a, b) ->
        Bitvec.cardinal (bv a) = Itemset.cardinal a
        && Bitvec.inter_cardinal (bv a) (bv b) = Itemset.cardinal (Itemset.inter a b));
    unit "mutation and bounds" (fun () ->
        let t = Bitvec.create ~universe_size:70 in
        Alcotest.(check bool) "empty" true (Bitvec.is_empty t);
        Bitvec.add t 0;
        Bitvec.add t 69;
        (* crosses the 62-bit word boundary *)
        Alcotest.(check bool) "mem 69" true (Bitvec.mem t 69);
        Alcotest.(check int) "card" 2 (Bitvec.cardinal t);
        Bitvec.remove t 0;
        Alcotest.(check bool) "removed" false (Bitvec.mem t 0);
        Alcotest.check_raises "oob" (Invalid_argument "Bitvec: item out of range")
          (fun () -> Bitvec.add t 70));
    unit "universe mismatch" (fun () ->
        let a = Bitvec.create ~universe_size:10 in
        let b = Bitvec.create ~universe_size:11 in
        Alcotest.check_raises "mismatch" (Invalid_argument "Bitvec: universe mismatch")
          (fun () -> ignore (Bitvec.union a b)));
    unit "iter visits in order" (fun () ->
        let t = bv (Itemset.of_list [ 3; 1; 7 ]) in
        let seen = ref [] in
        Bitvec.iter (fun i -> seen := i :: !seen) t;
        Alcotest.(check (list int)) "order" [ 1; 3; 7 ] (List.rev !seen));
    unit "copy is independent" (fun () ->
        let a = bv (Itemset.of_list [ 1 ]) in
        let b = Bitvec.copy a in
        Bitvec.add b 2;
        Alcotest.(check bool) "a unchanged" false (Bitvec.mem a 2));
  ]
