open Cfq_itembase
open Cfq_txdb

let unit name f = Alcotest.test_case name `Quick f

let db_fixture () =
  Helpers.db_of_lists [ [ 0; 1; 2 ]; [ 1; 2 ]; [ 0; 2 ]; [ 2 ]; [ 0; 1; 2; 3 ] ]

let suite =
  [
    unit "page model packing" (fun () ->
        let pm = Page_model.make ~page_size_bytes:100 ~tid_bytes:10 ~item_bytes:10 () in
        (* each tx of 4 items = 50 bytes: two per page *)
        Alcotest.(check int) "pairs" 2 (Page_model.pages_for pm [| 4; 4; 4 |]);
        Alcotest.(check int) "empty" 0 (Page_model.pages_for pm [||]);
        (* oversized tx takes dedicated pages *)
        Alcotest.(check int) "oversize" 3 (Page_model.pages_for pm [| 25 |]));
    unit "page model default is 4K" (fun () ->
        Alcotest.(check int) "4096" 4096 Page_model.default.Page_model.page_size_bytes);
    unit "io stats accumulate" (fun () ->
        let io = Io_stats.create () in
        Io_stats.record_scan io ~pages:10 ~tuples:100;
        Io_stats.record_scan io ~pages:10 ~tuples:100;
        Alcotest.(check int) "scans" 2 (Io_stats.scans io);
        Alcotest.(check int) "pages" 20 (Io_stats.pages_read io);
        let io2 = Io_stats.create () in
        Io_stats.record_scan io2 ~pages:1 ~tuples:1;
        Io_stats.add io io2;
        Alcotest.(check int) "added" 21 (Io_stats.pages_read io);
        Io_stats.reset io;
        Alcotest.(check int) "reset" 0 (Io_stats.scans io));
    unit "support counting" (fun () ->
        let db = db_fixture () in
        let io = Io_stats.create () in
        Alcotest.(check int) "support {2}" 5 (Tx_db.support db io (Itemset.of_list [ 2 ]));
        Alcotest.(check int) "support {0,1}" 2
          (Tx_db.support db io (Itemset.of_list [ 0; 1 ]));
        Alcotest.(check int) "support {3}" 1 (Tx_db.support db io (Itemset.of_list [ 3 ]));
        Alcotest.(check int) "three scans recorded" 3 (Io_stats.scans io));
    unit "item_frequencies" (fun () ->
        let db = db_fixture () in
        let io = Io_stats.create () in
        let freq = Tx_db.item_frequencies db io ~universe_size:4 in
        Alcotest.(check (array int)) "freqs" [| 3; 3; 5; 1 |] freq);
    unit "absolute_support" (fun () ->
        let db = db_fixture () in
        Alcotest.(check int) "60%" 3 (Tx_db.absolute_support db 0.6);
        Alcotest.(check int) "0 -> at least 1" 1 (Tx_db.absolute_support db 0.);
        Alcotest.(check int) "100%" 5 (Tx_db.absolute_support db 1.);
        Alcotest.check_raises "range" (Invalid_argument "Tx_db.absolute_support")
          (fun () -> ignore (Tx_db.absolute_support db 1.5)));
    unit "avg_tx_len and size" (fun () ->
        let db = db_fixture () in
        Alcotest.(check int) "size" 5 (Tx_db.size db);
        Alcotest.(check (float 1e-9)) "avg" 2.4 (Tx_db.avg_tx_len db));
    unit "get preserves tids" (fun () ->
        let db = db_fixture () in
        Alcotest.(check int) "tid 3" 3 (Tx_db.get db 3).Transaction.tid;
        Alcotest.(check int) "card" 1 (Transaction.cardinal (Tx_db.get db 3)));
  ]
