open Cfq_itembase
open Cfq_constr
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f
let price = Helpers.price
let typ = Helpers.typ

let simplify text = Rewrite.simplify (Parser.parse text)

let suite =
  [
    unit "redundant aggregate bounds merge to the tightest" (fun () ->
        let r = simplify "sum(S.Price) <= 100 & sum(S.Price) <= 50 & sum(S.Price) <= 70" in
        Alcotest.(check int) "one atom" 1 (List.length r.Rewrite.query.Query.s_constraints);
        Alcotest.(check bool) "kept 50" true
          (List.exists
             (function
               | One_var.Agg_cmp (Agg.Sum, _, Cmp.Le, 50.) -> true
               | _ -> false)
             r.Rewrite.query.Query.s_constraints));
    unit "strict beats non-strict at the same constant" (fun () ->
        let r = simplify "min(S.Price) < 10 & min(S.Price) <= 10" in
        Alcotest.(check bool) "kept <" true
          (r.Rewrite.query.Query.s_constraints
          = [ One_var.Agg_cmp (Agg.Min, price, Cmp.Lt, 10.) ]));
    unit "crossing bounds are unsatisfiable" (fun () ->
        let r = simplify "max(S.Price) <= 10 & max(S.Price) >= 20" in
        Alcotest.(check bool) "s unsat" true r.Rewrite.s_unsat;
        Alcotest.(check bool) "t fine" false r.Rewrite.t_unsat);
    unit "touching strict bounds are unsatisfiable" (fun () ->
        let r = simplify "avg(T.Price) < 10 & avg(T.Price) >= 10" in
        Alcotest.(check bool) "t unsat" true r.Rewrite.t_unsat);
    unit "compatible bounds are kept" (fun () ->
        let r = simplify "max(S.Price) >= 10 & max(S.Price) <= 20" in
        Alcotest.(check bool) "sat" false r.Rewrite.s_unsat;
        Alcotest.(check int) "two atoms" 2
          (List.length r.Rewrite.query.Query.s_constraints));
    unit "subset value sets intersect" (fun () ->
        let r = simplify "S.Type subset {1, 2} & S.Type subset {2, 3}" in
        match r.Rewrite.query.Query.s_constraints with
        | [ One_var.Dom_subset (_, vs) ] ->
            Alcotest.(check bool) "= {2}" true
              (Value_set.equal vs (Value_set.singleton 2.))
        | _ -> Alcotest.fail "expected one merged subset");
    unit "disjoint subset sets are unsatisfiable" (fun () ->
        let r = simplify "S.Type subset {1} & S.Type subset {2}" in
        Alcotest.(check bool) "unsat" true r.Rewrite.s_unsat);
    unit "superset clashing with subset is unsatisfiable" (fun () ->
        let r = simplify "S.Type superset {5} & S.Type subset {1, 2}" in
        Alcotest.(check bool) "unsat" true r.Rewrite.s_unsat);
    unit "superset clashing with disjoint is unsatisfiable" (fun () ->
        let r = simplify "S.Type superset {3} & S.Type disjoint {3, 4}" in
        Alcotest.(check bool) "unsat" true r.Rewrite.s_unsat);
    unit "supersets union" (fun () ->
        let r = simplify "S.Type superset {1} & S.Type superset {2}" in
        match r.Rewrite.query.Query.s_constraints with
        | [ One_var.Dom_superset (_, vs) ] ->
            Alcotest.(check int) "two values" 2 (Value_set.cardinal vs)
        | _ -> Alcotest.fail "expected one merged superset");
    unit "duplicate 2-var constraints are deduplicated" (fun () ->
        let q =
          Query.make
            ~two_var:
              [
                Two_var.Set2 (typ, Two_var.Set_eq, typ);
                Two_var.Set2 (typ, Two_var.Set_eq, typ);
              ]
            ()
        in
        let r = Rewrite.simplify q in
        Alcotest.(check int) "one left" 1 (List.length r.Rewrite.query.Query.two_var);
        Alcotest.(check bool) "note" true (r.Rewrite.notes <> []));
    unit "unsatisfiable query short-circuits execution" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ] ] in
        let ctx = Exec.context db (Helpers.small_info 2) in
        let r =
          Exec.run ctx (Parser.parse "max(S.Price) <= 1 & max(S.Price) >= 100")
        in
        Alcotest.(check int) "no pairs" 0 r.Exec.pair_stats.Pairs.n_pairs;
        Alcotest.(check int) "no scans" 0 (Cfq_txdb.Io_stats.scans r.Exec.io);
        Alcotest.(check bool) "note says unsatisfiable" true
          (List.exists (fun n -> Astring_contains.contains n "unsatisfiable") r.Exec.notes));
    Helpers.qtest ~count:200 "simplification preserves semantics"
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 4) Helpers.gen_one_var)
         (Helpers.gen_itemset 8))
      (fun (cs, s) ->
        String.concat " & " (List.map One_var.to_string cs) ^ " on " ^ Itemset.to_string s)
      (fun (cs, s) ->
        let info = Helpers.small_info 8 in
        let q = Query.make ~s_constraints:cs () in
        let r = Rewrite.simplify q in
        let eval cs = List.for_all (fun c -> One_var.eval info c s) cs in
        if r.Rewrite.s_unsat then not (eval cs)
        else eval cs = eval r.Rewrite.query.Query.s_constraints);
  ]
