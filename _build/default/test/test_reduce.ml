open Cfq_itembase
open Cfq_constr
open Cfq_txdb

let unit name f = Alcotest.test_case name `Quick f

let l1_of db ~n ~minsup =
  Itemset.of_list
    (List.filter_map
       (fun s ->
         if Itemset.cardinal s = 1 && Helpers.support_of db s >= minsup then
           Itemset.min_item s
         else None)
       (Helpers.all_subsets n))

let reduction_env (n, db) c =
  let info = Helpers.small_info n in
  let minsup = max 1 (Tx_db.size db / 5) in
  let l1 = l1_of db ~n ~minsup in
  let red = Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1 c in
  (info, minsup, red)

let print_case (c, db) = Two_var.to_string c ^ " on " ^ Helpers.print_db db

(* Soundness (Definition 5 / Lemma 2): no valid S-set is pruned by C1 *)
let sound_s (c, (n, db)) =
  let info, minsup, red = reduction_env (n, db) c in
  let valid = Helpers.brute_valid_s db ~n ~minsup ~s_info:info ~t_info:info c in
  List.for_all
    (fun s -> List.for_all (fun cond -> One_var.eval info cond s) red.Reduce.s_conds)
    valid

let sound_t (c, (n, db)) =
  let info, minsup, red = reduction_env (n, db) c in
  let valid = Helpers.brute_valid_t db ~n ~minsup ~s_info:info ~t_info:info c in
  List.for_all
    (fun t -> List.for_all (fun cond -> One_var.eval info cond t) red.Reduce.t_conds)
    valid

(* Tightness (Lemma 3): when flagged, every set passing C1 is valid *)
let tight_s (c, (n, db)) =
  let info, minsup, red = reduction_env (n, db) c in
  (not red.Reduce.s_tight)
  ||
  let valid = Helpers.brute_valid_s db ~n ~minsup ~s_info:info ~t_info:info c in
  List.for_all
    (fun s ->
      (not (List.for_all (fun cond -> One_var.eval info cond s) red.Reduce.s_conds))
      || List.exists (Itemset.equal s) valid)
    (Helpers.all_subsets n)

let tight_t (c, (n, db)) =
  let info, minsup, red = reduction_env (n, db) c in
  (not red.Reduce.t_tight)
  ||
  let valid = Helpers.brute_valid_t db ~n ~minsup ~s_info:info ~t_info:info c in
  List.for_all
    (fun t ->
      (not (List.for_all (fun cond -> One_var.eval info cond t) red.Reduce.t_conds))
      || List.exists (Itemset.equal t) valid)
    (Helpers.all_subsets n)

let gen_case = QCheck2.Gen.pair Helpers.gen_two_var Helpers.gen_db
let gen_case_minmax = QCheck2.Gen.pair Helpers.gen_two_var_minmax Helpers.gen_db

let price = Helpers.price
let typ = Helpers.typ

let suite =
  [
    Helpers.qtest ~count:150 "reduction C1(S) is sound for every 2-var constraint"
      gen_case print_case sound_s;
    Helpers.qtest ~count:150 "reduction C2(T) is sound for every 2-var constraint"
      gen_case print_case sound_t;
    Helpers.qtest ~count:150 "reduction C1(S) is tight when flagged" gen_case
      print_case tight_s;
    Helpers.qtest ~count:150 "reduction C2(T) is tight when flagged" gen_case
      print_case tight_t;
    Helpers.qtest ~count:100 "min/max reductions are tight both sides (Theorem 3)"
      gen_case_minmax print_case (fun ((c, _) as case) ->
        let _, _, red = reduction_env (snd case) c in
        red.Reduce.s_tight && red.Reduce.t_tight && tight_s case && tight_t case);
    unit "Figure 2 row: non-overlapping constraint (Lemmas 2-3)" (fun () ->
        (* S.Type ∩ T.Type = ∅ reduces to CS.Type ⊉ L1T.Type both sides *)
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1; 2 ] in
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Set2 (typ, Two_var.Disjoint, typ))
        in
        (match red.Reduce.s_conds with
        | [ One_var.Dom_not_superset (a, vs) ] ->
            Alcotest.(check string) "attr" "Type" a.Attr.name;
            (* types of items 0,1,2 are 0,1,2 *)
            Alcotest.(check int) "value set" 3 (Value_set.cardinal vs)
        | _ -> Alcotest.fail "expected a single not-superset condition");
        Alcotest.(check bool) "tight" true (red.Reduce.s_tight && red.Reduce.t_tight));
    unit "Figure 3 row: max(S) <= min(T)" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1; 2; 3 ] in
        (* prices of items 0..3: 10,40,70,30 *)
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Min, price))
        in
        Alcotest.(check bool) "C1 = max(CS) <= max(L1T)" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 70.) ]);
        Alcotest.(check bool) "C2 = min(CT) >= min(L1S)" true
          (red.Reduce.t_conds = [ One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 10.) ]));
    unit "Figure 3 row: min(S) <= min(T)" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1; 2; 3 ] in
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Agg2 (Agg.Min, price, Cmp.Le, Agg.Min, price))
        in
        Alcotest.(check bool) "C1 = min(CS) <= max(L1T)" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 70.) ]);
        Alcotest.(check bool) "C2 = min(CT) >= min(L1S)" true
          (red.Reduce.t_conds = [ One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 10.) ]));
    unit "Figure 4 rows: sum/avg reduce to sound bound conditions" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1; 2; 3 ] in
        (* sum(S) <= max(T): our direct reduction bounds sum by max(L1T) = 70,
           which is strictly stronger than Figure 4's max(CS) <= max(L1T);
           the succinct Figure 4 form is recovered by One_var.induce_weaker *)
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Max, price))
        in
        Alcotest.(check bool) "C1 = sum(CS) <= max(L1T)" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 70.) ]);
        (match red.Reduce.s_conds with
        | [ c1 ] ->
            Alcotest.(check bool) "induces Figure 4's max <= 70" true
              (One_var.induce_weaker ~nonneg:true c1
              = [ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 70.) ])
        | _ -> Alcotest.fail "single condition expected");
        Alcotest.(check bool) "not tight" true
          ((not red.Reduce.s_tight) && not red.Reduce.t_tight));
    unit "sum bound uses positive sum of L1" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1 ] in
        (* prices 10, 40: achievable sum upper bound 50 *)
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Sum, price))
        in
        Alcotest.(check bool) "C1 = max(CS) <= 50" true
          (red.Reduce.s_conds = [ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 50.) ]));
    unit "empty L1 on either side yields the absurd condition" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0 ] in
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:Itemset.empty ~l1_t:l1
            (Two_var.Set2 (typ, Two_var.Disjoint, typ))
        in
        Alcotest.(check bool) "unsatisfiable" false
          (List.for_all
             (fun c -> One_var.eval info c (Itemset.of_list [ 0 ]))
             red.Reduce.s_conds));
    unit "set-ne reduction prunes nothing" (fun () ->
        let info = Helpers.small_info 6 in
        let l1 = Itemset.of_list [ 0; 1 ] in
        let red =
          Reduce.reduce ~s_info:info ~t_info:info ~l1_s:l1 ~l1_t:l1
            (Two_var.Set2 (typ, Two_var.Set_ne, typ))
        in
        Alcotest.(check bool) "no conds" true
          (red.Reduce.s_conds = [] && red.Reduce.t_conds = []));
  ]
