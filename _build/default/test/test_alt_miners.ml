(* Alternative mining substrates: FP-growth and Toivonen sampling must agree
   exactly with Apriori. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let frequent_equal a b =
  Frequent.n_sets a = Frequent.n_sets b
  && Frequent.fold
       (fun acc e -> acc && Frequent.support b e.Frequent.set = Some e.Frequent.support)
       true a

let apriori_of db n minsup =
  let io = Io_stats.create () in
  (Apriori.mine db (Helpers.small_info n) io ~minsup ()).Apriori.frequent

let suite =
  [
    Helpers.qtest ~count:100 "fp-growth equals apriori" Helpers.gen_db Helpers.print_db
      (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let fp = Fp_growth.mine db io ~minsup ~universe_size:n in
        frequent_equal fp (apriori_of db n minsup));
    Helpers.qtest ~count:60 "fp-growth takes exactly two scans" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let _ = Fp_growth.mine db io ~minsup:(max 1 (Tx_db.size db / 4)) ~universe_size:n in
        Io_stats.scans io = 2);
    unit "fp-growth on a classic example" (fun () ->
        (* the textbook FP-tree example *)
        let db =
          Helpers.db_of_lists
            [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 0 ]; [ 1; 2 ]; [ 1 ]; [ 2 ] ]
        in
        let io = Io_stats.create () in
        let f = Fp_growth.mine db io ~minsup:3 ~universe_size:3 in
        Alcotest.(check (option int)) "{0}" (Some 4) (Frequent.support f (Itemset.of_list [ 0 ]));
        Alcotest.(check (option int)) "{1}" (Some 4) (Frequent.support f (Itemset.of_list [ 1 ]));
        Alcotest.(check (option int)) "{2}" (Some 4) (Frequent.support f (Itemset.of_list [ 2 ]));
        Alcotest.(check (option int)) "{0,1} below threshold" None
          (Frequent.support f (Itemset.of_list [ 0; 1 ])));
    Helpers.qtest ~count:80 "sampling-with-border-expansion equals apriori"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let outcome =
          Sampling.mine db io ~minsup ~universe_size:n ~sample_frac:0.5 ()
        in
        frequent_equal outcome.Sampling.frequent (apriori_of db n minsup));
    Helpers.qtest ~count:40 "sampling with a tiny sample is still exact" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 4) in
        let io = Io_stats.create () in
        let outcome =
          Sampling.mine db io ~minsup ~universe_size:n ~sample_frac:0.15 ~seed:7 ()
        in
        frequent_equal outcome.Sampling.frequent (apriori_of db n minsup));
    unit "negative border of a small collection" (fun () ->
        (* F = {∅-closed: {0},{1},{0,1}} over universe {0,1,2}:
           border = {2} (missing singleton) only — every 2-set over F's
           items is present *)
        let f = Itemset.Hashtbl.create 8 in
        List.iter
          (fun l -> Itemset.Hashtbl.replace f (Itemset.of_list l) ())
          [ [ 0 ]; [ 1 ]; [ 0; 1 ] ];
        let border = Sampling.negative_border ~universe_size:3 f in
        Alcotest.(check (list string)) "border" [ "{i2}" ]
          (List.map Itemset.to_string border));
    unit "negative border includes joinable gaps" (fun () ->
        let f = Itemset.Hashtbl.create 8 in
        List.iter
          (fun l -> Itemset.Hashtbl.replace f (Itemset.of_list l) ())
          [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ];
        let border = Sampling.negative_border ~universe_size:3 f in
        Alcotest.(check (list string)) "border" [ "{i0,i1,i2}" ]
          (List.map Itemset.to_string border));
    Helpers.qtest ~count:100 "dhp equals apriori" Helpers.gen_db Helpers.print_db
      (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let dhp = Dhp.mine db io ~minsup ~universe_size:n ~n_buckets:13 in
        frequent_equal dhp.Dhp.frequent (apriori_of db n minsup));
    Helpers.qtest ~count:60 "dhp hash filter is sound and never grows C2"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let dhp = Dhp.mine db io ~minsup ~universe_size:n ~n_buckets:7 in
        (* every frequent pair must survive the filter, and the filter can
           only shrink the candidate set *)
        dhp.Dhp.c2_filtered <= dhp.Dhp.c2_plain
        && Frequent.fold
             (fun acc e -> acc && Itemset.cardinal e.Frequent.set <= n)
             true dhp.Dhp.frequent);
    unit "dhp filter actually prunes on a skewed example" (fun () ->
        (* items 0,1 always together; many buckets so other pairs miss *)
        let db =
          Helpers.db_of_lists
            [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 2 ]; [ 2 ]; [ 3 ]; [ 3 ]; [ 4 ]; [ 4 ] ]
        in
        let io = Io_stats.create () in
        let dhp = Dhp.mine db io ~minsup:2 ~universe_size:5 ~n_buckets:101 in
        Alcotest.(check int) "plain C2 = C(5,2)" 10 dhp.Dhp.c2_plain;
        Alcotest.(check bool) "filtered well below" true (dhp.Dhp.c2_filtered < 5);
        Alcotest.(check (option int)) "{0,1} found" (Some 3)
          (Frequent.support dhp.Dhp.frequent (Itemset.of_list [ 0; 1 ])));
    Helpers.qtest ~count:100 "apriori-tid equals apriori" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let tid = Apriori_tid.mine db io ~minsup ~universe_size:n in
        frequent_equal tid.Apriori_tid.frequent (apriori_of db n minsup));
    Helpers.qtest ~count:60 "apriori-tid scans the database exactly twice"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let _ = Apriori_tid.mine db io ~minsup:(max 1 (Tx_db.size db / 4)) ~universe_size:n in
        Io_stats.scans io = 2);
    Helpers.qtest ~count:60 "apriori-tid encoded database only shrinks"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let o = Apriori_tid.mine db io ~minsup:(max 1 (Tx_db.size db / 4)) ~universe_size:n in
        let rec non_increasing = function
          | a :: (b :: _ as rest) -> a >= b && non_increasing rest
          | _ -> true
        in
        non_increasing o.Apriori_tid.encoded_sizes);
    unit "sampling reports its rounds and sample size" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ]; [ 1 ]; [ 2 ] ] in
        let io = Io_stats.create () in
        let o = Sampling.mine db io ~minsup:2 ~universe_size:3 ~sample_frac:1.0 () in
        Alcotest.(check int) "full sample" 5 o.Sampling.sample_size;
        Alcotest.(check bool) "at least one round" true (o.Sampling.rounds >= 1));
  ]
