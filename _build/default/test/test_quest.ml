open Cfq_itembase
open Cfq_txdb
open Cfq_quest

let unit name f = Alcotest.test_case name `Quick f

let suite =
  [
    unit "splitmix is deterministic" (fun () ->
        let a = Splitmix.create ~seed:123L in
        let b = Splitmix.create ~seed:123L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Splitmix.next_int64 a)
            (Splitmix.next_int64 b)
        done);
    unit "splitmix split decorrelates" (fun () ->
        let a = Splitmix.create ~seed:123L in
        let c = Splitmix.split a in
        Alcotest.(check bool) "different" true
          (Splitmix.next_int64 a <> Splitmix.next_int64 c));
    unit "splitmix int range" (fun () ->
        let rng = Splitmix.create ~seed:5L in
        for _ = 1 to 1000 do
          let v = Splitmix.int rng 7 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
        done);
    unit "splitmix float range" (fun () ->
        let rng = Splitmix.create ~seed:5L in
        for _ = 1 to 1000 do
          let v = Splitmix.float rng in
          Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
        done);
    unit "uniform respects bounds" (fun () ->
        let rng = Splitmix.create ~seed:9L in
        for _ = 1 to 500 do
          let v = Dist.uniform rng ~lo:400. ~hi:1000. in
          Alcotest.(check bool) "bounds" true (v >= 400. && v < 1000.)
        done);
    unit "normal has roughly the right mean" (fun () ->
        let rng = Splitmix.create ~seed:10L in
        let n = 5000 in
        let total = ref 0. in
        for _ = 1 to n do
          total := !total +. Dist.normal rng ~mean:100. ~stddev:10.
        done;
        let mean = !total /. float_of_int n in
        Alcotest.(check bool) "mean near 100" true (Float.abs (mean -. 100.) < 1.));
    unit "poisson has roughly the right mean" (fun () ->
        let rng = Splitmix.create ~seed:11L in
        let n = 5000 in
        let total = ref 0 in
        for _ = 1 to n do
          total := !total + Dist.poisson rng ~mean:4.
        done;
        let mean = float_of_int !total /. float_of_int n in
        Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.) < 0.3));
    unit "exponential is positive with right mean" (fun () ->
        let rng = Splitmix.create ~seed:12L in
        let n = 5000 in
        let total = ref 0. in
        for _ = 1 to n do
          let v = Dist.exponential rng ~mean:2. in
          assert (v >= 0.);
          total := !total +. v
        done;
        let mean = !total /. float_of_int n in
        Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.) < 0.2));
    unit "sample_without_replacement is sorted and distinct" (fun () ->
        let rng = Splitmix.create ~seed:13L in
        for _ = 1 to 100 do
          let a = Dist.sample_without_replacement rng ~n:20 ~k:7 in
          Alcotest.(check int) "k" 7 (Array.length a);
          for i = 1 to 6 do
            Alcotest.(check bool) "strictly increasing" true (a.(i - 1) < a.(i))
          done;
          Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 20)) a
        done);
    unit "shuffle is a permutation" (fun () ->
        let rng = Splitmix.create ~seed:14L in
        let a = Array.init 50 Fun.id in
        Dist.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
    unit "pick_weighted respects mass" (fun () ->
        let rng = Splitmix.create ~seed:15L in
        (* weights 1, 0, 9: index 1 must never be drawn *)
        let cumulative = [| 1.; 1.; 10. |] in
        let counts = Array.make 3 0 in
        for _ = 1 to 2000 do
          let i = Dist.pick_weighted rng cumulative in
          counts.(i) <- counts.(i) + 1
        done;
        Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
        Alcotest.(check bool) "heavy drawn most" true (counts.(2) > counts.(0)));
    unit "quest generator is deterministic" (fun () ->
        let p = { (Quest_gen.scaled 200) with Quest_gen.n_items = 50 } in
        let a = Quest_gen.generate_itemsets (Splitmix.create ~seed:1L) p in
        let b = Quest_gen.generate_itemsets (Splitmix.create ~seed:1L) p in
        Alcotest.(check int) "same size" (Array.length a) (Array.length b);
        Array.iteri
          (fun i s -> Alcotest.(check bool) "same tx" true (Itemset.equal s b.(i)))
          a);
    unit "quest transactions respect the universe" (fun () ->
        let p = { (Quest_gen.scaled 300) with Quest_gen.n_items = 40 } in
        let txs = Quest_gen.generate_itemsets (Splitmix.create ~seed:2L) p in
        Alcotest.(check int) "count" 300 (Array.length txs);
        Array.iter
          (fun s ->
            Alcotest.(check bool) "non-empty" false (Itemset.is_empty s);
            Itemset.iter
              (fun i -> Alcotest.(check bool) "universe" true (i >= 0 && i < 40))
              s)
          txs);
    unit "quest average length near |T|" (fun () ->
        let p = { (Quest_gen.scaled 2000) with Quest_gen.n_items = 200 } in
        let db = Quest_gen.generate (Splitmix.create ~seed:3L) p in
        let avg = Tx_db.avg_tx_len db in
        Alcotest.(check bool)
          (Printf.sprintf "avg %.2f within [5, 15]" avg)
          true
          (avg > 5. && avg < 15.));
    unit "quest produces skewed co-occurrence" (fun () ->
        (* some pair must be much more frequent than independence predicts *)
        let p = { (Quest_gen.scaled 1000) with Quest_gen.n_items = 100 } in
        let db = Quest_gen.generate (Splitmix.create ~seed:4L) p in
        let io = Io_stats.create () in
        let freq = Tx_db.item_frequencies db io ~universe_size:100 in
        let best = Array.fold_left max 0 freq in
        Alcotest.(check bool) "some item frequent" true (best > 50));
    unit "pattern table has requested cardinality" (fun () ->
        let p = { (Quest_gen.scaled 200) with Quest_gen.n_items = 50 } in
        let pats = Quest_gen.patterns (Splitmix.create ~seed:6L) p in
        Alcotest.(check int) "n_patterns" p.Quest_gen.n_patterns (Array.length pats);
        Array.iter
          (fun (s, w) ->
            Alcotest.(check bool) "non-empty pattern" false (Itemset.is_empty s);
            Alcotest.(check bool) "weights cumulative" true (w > 0.))
          pats);
    unit "planted pattern appears at about its probability" (fun () ->
        let rng = Splitmix.create ~seed:21L in
        let pat = Planted.pattern ~prob:0.3 (Itemset.of_list [ 1; 2; 3 ]) in
        let db = Planted.generate rng ~n_transactions:3000 ~universe:(0, 20) ~noise_len:2. [ pat ] in
        let io = Io_stats.create () in
        let sup = Tx_db.support db io (Itemset.of_list [ 1; 2; 3 ]) in
        let frac = float_of_int sup /. 3000. in
        Alcotest.(check bool)
          (Printf.sprintf "support %.3f near 0.3" frac)
          true
          (frac > 0.25 && frac < 0.36));
    unit "banded types control the overlap window" (fun () ->
        let rng = Splitmix.create ~seed:22L in
        let prices = Array.init 1000 (fun i -> float_of_int i) in
        let types =
          Item_gen.banded_types rng ~prices ~s_lo:400. ~t_hi:600. ~n_types_per_side:50
            ~overlap:0.4
        in
        let s_types = ref (Value_set.of_list []) in
        let t_types = ref (Value_set.of_list []) in
        Array.iteri
          (fun i ty ->
            if prices.(i) >= 400. then s_types := Value_set.union !s_types (Value_set.singleton ty);
            if prices.(i) <= 600. then t_types := Value_set.union !t_types (Value_set.singleton ty))
          types;
        let inter = Value_set.inter !s_types !t_types in
        (* overlap window is k = 20 types *)
        Alcotest.(check bool) "overlap near 20" true
          (Value_set.cardinal inter >= 15 && Value_set.cardinal inter <= 20);
        Alcotest.(check bool) "s types within [0,50)" true
          (Value_set.for_all (fun v -> v >= 0. && v < 50.) !s_types));
  ]
