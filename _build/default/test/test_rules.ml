open Cfq_itembase
open Cfq_mining
open Cfq_core
open Cfq_rules

let unit name f = Alcotest.test_case name `Quick f

let suite =
  [
    unit "metric arithmetic" (fun () ->
        let m = Metric.compute ~n:100 ~n_s:20 ~n_t:50 ~n_st:10 in
        Alcotest.(check (float 1e-9)) "support" 0.1 m.Metric.support;
        Alcotest.(check (float 1e-9)) "confidence" 0.5 m.Metric.confidence;
        Alcotest.(check (float 1e-9)) "lift" 1.0 m.Metric.lift;
        Alcotest.(check (float 1e-9)) "leverage" 0.0 m.Metric.leverage;
        Alcotest.(check (float 1e-9)) "conviction" 1.0 m.Metric.conviction);
    unit "metric perfect implication" (fun () ->
        let m = Metric.compute ~n:100 ~n_s:20 ~n_t:50 ~n_st:20 in
        Alcotest.(check (float 1e-9)) "confidence" 1.0 m.Metric.confidence;
        Alcotest.(check bool) "conviction infinite" true
          (m.Metric.conviction = infinity));
    unit "metric validations" (fun () ->
        Alcotest.check_raises "inconsistent"
          (Invalid_argument "Metric.compute: inconsistent counts") (fun () ->
            ignore (Metric.compute ~n:10 ~n_s:2 ~n_t:3 ~n_st:5));
        Alcotest.check_raises "empty db"
          (Invalid_argument "Metric.compute: empty database") (fun () ->
            ignore (Metric.compute ~n:0 ~n_s:1 ~n_t:1 ~n_st:1)));
    unit "rules from a hand-built database" (fun () ->
        (* {0} appears 4x, {1} appears 3x, together 2x *)
        let db =
          Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ]; [ 0 ]; [ 1 ]; [ 2 ] ]
        in
        let io = Cfq_txdb.Io_stats.create () in
        let e set support = { Frequent.set = Itemset.of_list set; support } in
        let rules = Rule.of_pairs db io [ (e [ 0 ] 4, e [ 1 ] 3) ] in
        match rules with
        | [ r ] ->
            Alcotest.(check (float 1e-9)) "confidence" 0.5 r.Rule.metric.Metric.confidence;
            Alcotest.(check (float 1e-9)) "support" (2. /. 6.) r.Rule.metric.Metric.support;
            Alcotest.(check bool) "lift 0.5/(3/6) = 1" true
              (Float.abs (r.Rule.metric.Metric.lift -. 1.0) < 1e-9)
        | _ -> Alcotest.fail "expected one rule");
    unit "min_confidence filters" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0 ]; [ 0 ]; [ 0 ] ] in
        let io = Cfq_txdb.Io_stats.create () in
        let e set support = { Frequent.set = Itemset.of_list set; support } in
        let pairs = [ (e [ 0 ] 4, e [ 1 ] 1) ] in
        Alcotest.(check int) "kept" 1 (List.length (Rule.of_pairs db io pairs));
        Alcotest.(check int) "filtered" 0
          (List.length (Rule.of_pairs db io ~min_confidence:0.5 pairs)));
    unit "overlapping antecedent and consequent share the union count" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 1; 2 ] ] in
        let io = Cfq_txdb.Io_stats.create () in
        let e set support = { Frequent.set = Itemset.of_list set; support } in
        (* S = {0,1}, T = {1,2}: union {0,1,2} appears once *)
        let rules = Rule.of_pairs db io [ (e [ 0; 1 ] 2, e [ 1; 2 ] 2) ] in
        match rules with
        | [ r ] ->
            Alcotest.(check (float 1e-9)) "conf" 0.5 r.Rule.metric.Metric.confidence
        | _ -> Alcotest.fail "expected one rule");
    unit "one extra scan for any number of pairs" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        let io = Cfq_txdb.Io_stats.create () in
        let e set support = { Frequent.set = Itemset.of_list set; support } in
        let pairs =
          [ (e [ 0 ] 2, e [ 1 ] 2); (e [ 0 ] 2, e [ 2 ] 2); (e [ 1 ] 2, e [ 2 ] 2) ]
        in
        let _ = Rule.of_pairs db io pairs in
        Alcotest.(check int) "one scan" 1 (Cfq_txdb.Io_stats.scans io));
    unit "no pairs, no scan" (fun () ->
        let db = Helpers.db_of_lists [ [ 0 ] ] in
        let io = Cfq_txdb.Io_stats.create () in
        let _ = Rule.of_pairs db io [] in
        Alcotest.(check int) "zero scans" 0 (Cfq_txdb.Io_stats.scans io));
    unit "classic single-set rule generation" (fun () ->
        (* {0,1} support 3, {0} support 4, {1} support 3, n = 5 *)
        let db =
          Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 0 ]; [ 2 ] ]
        in
        let io = Cfq_txdb.Io_stats.create () in
        let f = (Apriori.mine db (Helpers.small_info 3) io ~minsup:2 ()).Apriori.frequent in
        let rules = Rule.of_frequent f ~n:5 ~min_confidence:0.9 in
        (* 1 => 0 has conf 1.0; 0 => 1 has conf 0.75 < 0.9 *)
        Alcotest.(check int) "one rule" 1 (List.length rules);
        let r = List.hd rules in
        Alcotest.(check bool) "antecedent {1}" true
          (Itemset.equal r.Rule.antecedent (Itemset.of_list [ 1 ]));
        Alcotest.(check (float 1e-9)) "conf" 1.0 r.Rule.metric.Metric.confidence);
    Helpers.qtest ~count:60 "ap-genrules equals brute-force enumeration"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Cfq_txdb.Tx_db.size db / 4) in
        let io = Cfq_txdb.Io_stats.create () in
        let f = (Apriori.mine db (Helpers.small_info n) io ~minsup ()).Apriori.frequent in
        let n_tx = Cfq_txdb.Tx_db.size db in
        let got = Rule.of_frequent f ~n:n_tx ~min_confidence:0.6 in
        (* brute force: every frequent Z, every non-trivial split *)
        let expected = ref 0 in
        Frequent.iter
          (fun e ->
            let z = e.Frequent.set in
            Itemset.powerset z (fun consequent ->
                if
                  (not (Itemset.is_empty consequent))
                  && Itemset.cardinal consequent < Itemset.cardinal z
                then begin
                  let antecedent = Itemset.diff z consequent in
                  match Frequent.support f antecedent with
                  | Some n_s ->
                      if
                        float_of_int e.Frequent.support /. float_of_int n_s
                        >= 0.6 -. 1e-12
                      then incr expected
                  | None -> ()
                end))
          f;
        List.length got = !expected);
    Helpers.qtest ~count:60 "two-phase mine: every rule's pair satisfies the query"
      (QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db)
      (fun (q, db) -> Query.to_string q ^ " on " ^ Helpers.print_db db)
      (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let rules, r = Rule.mine ctx q in
        List.length rules = r.Exec.pair_stats.Pairs.n_pairs
        && List.for_all
             (fun rule ->
               List.for_all
                 (fun c ->
                   Cfq_constr.Two_var.eval ~s_info:info ~t_info:info c
                     rule.Rule.antecedent rule.Rule.consequent)
                 q.Query.two_var)
             rules);
    Helpers.qtest ~count:60 "rules are sorted by descending confidence"
      (QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db)
      (fun (q, db) -> Query.to_string q ^ " on " ^ Helpers.print_db db)
      (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let rules, _ = Rule.mine (Exec.context db info) q in
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              a.Rule.metric.Metric.confidence >= b.Rule.metric.Metric.confidence
              && sorted rest
          | _ -> true
        in
        sorted rules);
  ]
