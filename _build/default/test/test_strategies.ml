(* The Sequential-T-first strategy (Section 5.2's "global maximum M"
   alternative) and the FM counterexample (Section 6.2). *)

open Cfq_itembase
open Cfq_core
open Cfq_mining

let gen_case = QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db
let print_case (q, db) = Query.to_string q ^ " on " ^ Helpers.print_db db

let answer ctx q strategy =
  Helpers.sorted_pairs
    (List.map
       (fun (a, b) -> (a.Frequent.set, b.Frequent.set))
       (Exec.run ~strategy ~collect_pairs:true ctx q).Exec.pairs)

let pairs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (s1, t1) (s2, t2) -> Itemset.equal s1 s2 && Itemset.equal t1 t2)
       a b

let unit name f = Alcotest.test_case name `Quick f

let suite =
  [
    Helpers.qtest ~count:150 "sequential answer equals the brute-force semantics"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
        in
        pairs_equal (answer ctx q Plan.Sequential_t_first) brute);
    Helpers.qtest ~count:100 "full-materialize answer equals the brute-force semantics"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
        in
        pairs_equal (answer ctx q Plan.Full_materialize) brute);
    Helpers.qtest ~count:100
      "sequential never counts more S-sets than the dovetailed optimizer"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let o = Exec.run ~strategy:Plan.Optimized ctx q in
        let s = Exec.run ~strategy:Plan.Sequential_t_first ctx q in
        (* exact bounds from the completed T lattice prune at least as hard
           as the V^k series *)
        Counters.support_counted s.Exec.s.Exec.counters
        <= Counters.support_counted o.Exec.s.Exec.counters);
    Helpers.qtest ~count:100 "sequential pays scans serially, dovetail shares them"
      gen_case print_case (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let o = Exec.run ~strategy:Plan.Optimized ctx q in
        let s = Exec.run ~strategy:Plan.Sequential_t_first ctx q in
        Cfq_txdb.Io_stats.scans s.Exec.io >= Cfq_txdb.Io_stats.scans o.Exec.io);
    unit "FM violates ccc condition 2 (powerset-many checks)" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0; 1; 2 ] ] in
        let n = 6 in
        let info = Helpers.small_info n in
        let q =
          Parser.parse "{(S,T) | freq(S) >= 0.4 & freq(T) >= 0.4 & max(S.Price) <= 40}"
        in
        let ctx = Exec.context db info in
        let fm = Exec.run ~strategy:Plan.Full_materialize ctx q in
        let opt = Exec.run ~strategy:Plan.Optimized ctx q in
        (* FM checks the powerset of each side: >= 2 * (2^6 - 1) checks, far
           beyond the N-per-side of the succinct-pushing optimizer *)
        Alcotest.(check bool) "fm checks >= 2^n - 1" true
          (Counters.constraint_checks fm.Exec.s.Exec.counters >= (1 lsl n) - 1);
        Alcotest.(check bool) "fm counts no more than optimizer" true
          (Counters.support_counted fm.Exec.s.Exec.counters
          <= Counters.support_counted opt.Exec.s.Exec.counters);
        Alcotest.(check int) "same answers" opt.Exec.pair_stats.Pairs.n_pairs
          fm.Exec.pair_stats.Pairs.n_pairs);
    unit "FM refuses large universes" (fun () ->
        let db = Helpers.db_of_lists [ [ 0 ] ] in
        let info = Helpers.small_info 21 in
        let bundle = Cfq_constr.Bundle.unconstrained info in
        Alcotest.check_raises "guard"
          (Invalid_argument "Full_mat.run: universe too large for full materialization")
          (fun () ->
            ignore
              (Full_mat.run db (Cfq_txdb.Io_stats.create ())
                 (Counters.create ()) ~bundle ~minsup:1)));
    unit "sequential exact bound matches the global maximum M" (fun () ->
        (* sum(S.Price) <= sum(T.Price): S lattice candidates must satisfy
           sum <= max over frequent T of sum(T.Price) *)
        let db =
          Helpers.db_of_lists
            [ [ 0; 1 ]; [ 0; 1 ]; [ 2; 3 ]; [ 2; 3 ]; [ 0; 2 ]; [ 1; 3 ] ]
        in
        let info = Helpers.small_info 4 in
        let q =
          Parser.parse
            "{(S,T) | freq(S) >= 0.3 & freq(T) >= 0.3 & sum(S.Price) <= sum(T.Price)}"
        in
        let ctx = Exec.context db info in
        let r = Exec.run ~strategy:Plan.Sequential_t_first ~collect_pairs:true ctx q in
        let brute =
          Helpers.sorted_pairs (Helpers.brute_answer db ~n:4 ~s_info:info ~t_info:info q)
        in
        Alcotest.(check int) "pairs" (List.length brute) r.Exec.pair_stats.Pairs.n_pairs);
  ]
