open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let frequent_equal a b =
  Frequent.n_sets a = Frequent.n_sets b
  && Frequent.fold
       (fun acc e -> acc && Frequent.support b e.Frequent.set = Some e.Frequent.support)
       true a

let suite =
  [
    Helpers.qtest ~count:100 "partition mining equals apriori (2 partitions)"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 5) in
        let io = Io_stats.create () in
        let part = Partition.mine db io ~minsup ~n_partitions:2 ~universe_size:n in
        let io2 = Io_stats.create () in
        let apriori = (Apriori.mine db (Helpers.small_info n) io2 ~minsup ()).Apriori.frequent in
        frequent_equal part apriori);
    Helpers.qtest ~count:60 "partition mining equals apriori (5 partitions)"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 4) in
        let io = Io_stats.create () in
        let part = Partition.mine db io ~minsup ~n_partitions:5 ~universe_size:n in
        let io2 = Io_stats.create () in
        let apriori = (Apriori.mine db (Helpers.small_info n) io2 ~minsup ()).Apriori.frequent in
        frequent_equal part apriori);
    Helpers.qtest ~count:60 "partition mining takes exactly two scans" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let _ =
          Partition.mine db io ~minsup:(max 1 (Tx_db.size db / 5)) ~n_partitions:3
            ~universe_size:n
        in
        Io_stats.scans io = 2);
    unit "single partition degenerates to exact mining" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ] ] in
        let io = Io_stats.create () in
        let f = Partition.mine db io ~minsup:2 ~n_partitions:1 ~universe_size:3 in
        Alcotest.(check (option int)) "pair" (Some 2)
          (Frequent.support f (Itemset.of_list [ 0; 1 ]));
        Alcotest.(check (option int)) "item 2 infrequent" None
          (Frequent.support f (Itemset.of_list [ 2 ])));
    unit "more partitions than transactions still works" (fun () ->
        let db = Helpers.db_of_lists [ [ 0 ]; [ 0 ] ] in
        let io = Io_stats.create () in
        let f = Partition.mine db io ~minsup:2 ~n_partitions:10 ~universe_size:1 in
        Alcotest.(check int) "one set" 1 (Frequent.n_sets f));
    unit "maximal sets" (fun () ->
        let db =
          Helpers.db_of_lists [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 3 ]; [ 3 ]; [ 0; 3 ] ]
        in
        let io = Io_stats.create () in
        let f = (Apriori.mine db (Helpers.small_info 4) io ~minsup:2 ()).Apriori.frequent in
        let maximal = Frequent.maximal f in
        let sets = List.map (fun e -> Itemset.to_string e.Frequent.set) maximal in
        (* {0,1,2} and {3} are maximal; {0,3} appears once only *)
        Alcotest.(check (list string)) "maximal" [ "{i3}"; "{i0,i1,i2}" ] sets);
    unit "closed sets compress losslessly" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ] ] in
        let io = Io_stats.create () in
        let f = (Apriori.mine db (Helpers.small_info 2) io ~minsup:2 ()).Apriori.frequent in
        (* {0} support 3 closed; {1} support 2 absorbed by {0,1} support 2 *)
        let closed = Frequent.closed f in
        let names = List.map (fun e -> Itemset.to_string e.Frequent.set) closed in
        Alcotest.(check (list string)) "closed" [ "{i0}"; "{i0,i1}" ] names);
    Helpers.qtest ~count:60 "every frequent set has a closed superset of equal support"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let f =
          (Apriori.mine db (Helpers.small_info n) io ~minsup:(max 1 (Tx_db.size db / 5)) ())
            .Apriori.frequent
        in
        let closed = Frequent.closed f in
        Frequent.fold
          (fun acc e ->
            acc
            && List.exists
                 (fun c ->
                   Itemset.subset e.Frequent.set c.Frequent.set
                   && c.Frequent.support = e.Frequent.support)
                 closed)
          true f);
    Helpers.qtest ~count:60 "every frequent set is contained in some maximal set"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let io = Io_stats.create () in
        let f =
          (Apriori.mine db (Helpers.small_info n) io ~minsup:(max 1 (Tx_db.size db / 5)) ())
            .Apriori.frequent
        in
        let maximal = Frequent.maximal f in
        Frequent.fold
          (fun acc e ->
            acc
            && List.exists (fun m -> Itemset.subset e.Frequent.set m.Frequent.set) maximal)
          true f);
  ]
