(* End-to-end integration on realistic Quest data: every strategy returns
   identical answers, ccc counters order as the paper predicts, scans are
   shared by dovetailing.  Marked `Slow (a second or two each). *)

open Cfq_quest
open Cfq_core

let slow name f = Alcotest.test_case name `Slow f

let make_ctx () =
  let rng = Splitmix.create ~seed:20260706L in
  let n = 150 in
  let params = { (Quest_gen.scaled 1500) with Quest_gen.n_items = n } in
  let db = Quest_gen.generate rng params in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types =
    Item_gen.banded_types rng ~prices ~s_lo:400. ~t_hi:600. ~n_types_per_side:10
      ~overlap:0.4
  in
  Exec.context db (Item_gen.item_info ~prices ~types ())

let queries =
  [
    ("quasi-succinct minmax",
     "{(S,T) | freq(S) >= 0.03 & freq(T) >= 0.03 & S.Price >= 400 & max(S.Price) <= min(T.Price)}");
    ("type equality",
     "{(S,T) | freq(S) >= 0.03 & freq(T) >= 0.03 & S.Price >= 400 & T.Price <= 600 & S.Type = T.Type}");
    ("disjoint types",
     "{(S,T) | freq(S) >= 0.05 & freq(T) >= 0.05 & count(S.Type) <= 2 & S.Type disjoint T.Type}");
    ("sum vs sum",
     "{(S,T) | freq(S) >= 0.04 & freq(T) >= 0.04 & sum(S.Price) <= sum(T.Price)}");
    ("witness plus superset",
     "{(S,T) | freq(S) >= 0.04 & freq(T) >= 0.04 & min(S.Price) <= 150 & S.Type subset T.Type}");
    ("avg against avg",
     "{(S,T) | freq(S) >= 0.05 & freq(T) >= 0.05 & avg(S.Price) <= avg(T.Price)}");
  ]

let strategies = [ Plan.Apriori_plus; Plan.Cap_one_var; Plan.Optimized; Plan.Sequential_t_first ]

let suite =
  [
    slow "all strategies agree on realistic data" (fun () ->
        let ctx = make_ctx () in
        List.iter
          (fun (name, text) ->
            let q = Parser.parse text in
            let results = List.map (fun s -> Exec.run ~strategy:s ctx q) strategies in
            match results with
            | baseline :: rest ->
                List.iteri
                  (fun i r ->
                    Alcotest.(check int)
                      (Printf.sprintf "%s: strategy %d pair count" name i)
                      baseline.Exec.pair_stats.Pairs.n_pairs
                      r.Exec.pair_stats.Pairs.n_pairs)
                  rest
            | [] -> assert false)
          queries);
    slow "optimizer dominates CAP which dominates nothing on counting" (fun () ->
        let ctx = make_ctx () in
        let q =
          Parser.parse
            "{(S,T) | freq(S) >= 0.03 & freq(T) >= 0.03 & S.Price >= 400 & T.Price <= \
             600 & S.Type = T.Type}"
        in
        let cap = Exec.run ~strategy:Plan.Cap_one_var ctx q in
        let opt = Exec.run ~strategy:Plan.Optimized ctx q in
        Alcotest.(check bool) "optimizer counts fewer sets" true
          (Exec.total_counted opt <= Exec.total_counted cap));
    slow "dovetail scans bounded by the deeper lattice" (fun () ->
        let ctx = make_ctx () in
        let q =
          Parser.parse "{(S,T) | freq(S) >= 0.03 & freq(T) >= 0.03 & S.Price >= 400}"
        in
        let r = Exec.run ~strategy:Plan.Optimized ctx q in
        let deepest =
          max
            (List.length r.Exec.s.Exec.levels)
            (List.length r.Exec.t.Exec.levels)
        in
        Alcotest.(check bool)
          (Printf.sprintf "scans %d <= levels %d + 1" (Cfq_txdb.Io_stats.scans r.Exec.io) deepest)
          true
          (Cfq_txdb.Io_stats.scans r.Exec.io <= deepest + 1));
    slow "V^k trace is recorded for sum queries" (fun () ->
        let ctx = make_ctx () in
        let q =
          Parser.parse "{(S,T) | freq(S) >= 0.04 & freq(T) >= 0.04 & sum(S.Price) <= sum(T.Price)}"
        in
        let r = Exec.run ~strategy:Plan.Optimized ctx q in
        Alcotest.(check bool) "notes non-empty" true (r.Exec.notes <> []);
        Alcotest.(check bool) "notes mention V^k" true
          (List.for_all (fun n -> Astring_contains.contains n "V^k") r.Exec.notes));
    slow "advisor recommendation is never slower than 3x the best strategy" (fun () ->
        (* sanity that the advisor does not recommend something absurd *)
        let ctx = make_ctx () in
        List.iter
          (fun (_, text) ->
            let q = Parser.parse text in
            let e = Advisor.advise ctx q in
            let counted s = Exec.total_counted (Exec.run ~strategy:s ctx q) in
            let rec_counted = counted e.Advisor.strategy in
            let best =
              List.fold_left (fun acc s -> min acc (counted s)) max_int strategies
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: recommended %d vs best %d" text rec_counted best)
              true
              (rec_counted <= (3 * best) + 300))
          queries);
  ]
