open Cfq_itembase
open Cfq_constr

let unit name f = Alcotest.test_case name `Quick f
let info = Helpers.small_info 8
let price = Helpers.price

let gen_case =
  QCheck2.Gen.(
    pair Helpers.gen_two_var (pair (Helpers.gen_itemset 8) (Helpers.gen_itemset 8)))

let print_case (c, (s, t)) =
  Two_var.to_string c ^ " on " ^ Itemset.to_string s ^ "," ^ Itemset.to_string t

let suite =
  [
    Helpers.qtest ~count:300 "induced weaker 2-var constraints are implied" gen_case
      print_case (fun (c, (s, t)) ->
        match Induce.weaken ~nonneg:true c with
        | None -> QCheck2.assume_fail ()
        | Some c' ->
            (not (Two_var.eval ~s_info:info ~t_info:info c s t))
            || Two_var.eval ~s_info:info ~t_info:info c' s t);
    Helpers.qtest "induced constraints are quasi-succinct" Helpers.gen_two_var
      Two_var.to_string (fun c ->
        match Induce.weaken ~nonneg:true c with
        | None -> true
        | Some c' -> Classify.quasi_succinct c');
    Helpers.qtest "quasi-succinct constraints are not weakened" Helpers.gen_two_var
      Two_var.to_string (fun c ->
        (not (Classify.quasi_succinct c)) || Induce.weaken ~nonneg:true c = None);
    unit "Figure 4 rules" (fun () ->
        let check name c expected =
          Alcotest.(check bool) name true (Induce.weaken ~nonneg:true c = expected)
        in
        check "avg <= min  ~>  min <= min"
          (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Min, price))
          (Some (Two_var.Agg2 (Agg.Min, price, Cmp.Le, Agg.Min, price)));
        check "sum <= max  ~>  max <= max"
          (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Max, price))
          (Some (Two_var.Agg2 (Agg.Max, price, Cmp.Le, Agg.Max, price)));
        check "avg <= avg  ~>  min <= max"
          (Two_var.Agg2 (Agg.Avg, price, Cmp.Le, Agg.Avg, price))
          (Some (Two_var.Agg2 (Agg.Min, price, Cmp.Le, Agg.Max, price)));
        check "sum <= sum has no quasi-succinct weakening"
          (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Sum, price))
          None;
        (* mirrored direction *)
        check "min >= avg  ~>  min >= ... (upper side weakened)"
          (Two_var.Agg2 (Agg.Min, price, Cmp.Ge, Agg.Avg, price))
          (Some (Two_var.Agg2 (Agg.Min, price, Cmp.Ge, Agg.Min, price)));
        check "sum on the large side cannot be weakened"
          (Two_var.Agg2 (Agg.Sum, price, Cmp.Ge, Agg.Max, price))
          None;
        (* sum on the small side of >= is the mirrored Figure 4 rule *)
        check "max >= sum  ~>  max >= max"
          (Two_var.Agg2 (Agg.Max, price, Cmp.Ge, Agg.Sum, price))
          (Some (Two_var.Agg2 (Agg.Max, price, Cmp.Ge, Agg.Max, price))));
    unit "negative values disable the sum rule" (fun () ->
        Alcotest.(check bool) "sum <= max not weakened" true
          (Induce.weaken ~nonneg:false (Two_var.Agg2 (Agg.Sum, price, Cmp.Le, Agg.Max, price))
          = None));
  ]
