open Cfq_txdb
open Cfq_report

let unit name f = Alcotest.test_case name `Quick f

let profile_fixture () =
  let db =
    Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 0 ]; [ 2 ]; [ 2 ] ]
  in
  let io = Io_stats.create () in
  (Cfq_mining.Apriori.mine db (Helpers.small_info 3) io ~minsup:2 ()).Cfq_mining.Apriori.frequent

let suite =
  [
    unit "profile of a small collection" (fun () ->
        let p = Profile.of_frequent (profile_fixture ()) in
        (* frequent: {0}:4 {1}:3 {2}:2 {0,1}:3 *)
        Alcotest.(check int) "n_sets" 4 p.Profile.n_sets;
        Alcotest.(check int) "max size" 2 p.Profile.max_size;
        Alcotest.(check bool) "levels" true (p.Profile.per_level = [ (1, 3); (2, 1) ]);
        Alcotest.(check int) "min" 2 p.Profile.support_min;
        Alcotest.(check int) "max" 4 p.Profile.support_max;
        Alcotest.(check int) "maximal" 2 p.Profile.n_maximal;
        (* {1} absorbed by {0,1} (support 3); closed: {0},{2},{0,1} *)
        Alcotest.(check int) "closed" 3 p.Profile.n_closed);
    unit "profile of an empty collection" (fun () ->
        let p = Profile.of_frequent Cfq_mining.Frequent.empty in
        Alcotest.(check int) "zero" 0 p.Profile.n_sets;
        Alcotest.(check bool) "renders" true
          (String.length (Format.asprintf "%a" Profile.pp p) > 0));
    unit "cost model arithmetic" (fun () ->
        let cm = Cost_model.make ~seconds_per_page:0.01 () in
        let io = Io_stats.create () in
        Io_stats.record_scan io ~pages:100 ~tuples:1000;
        Alcotest.(check (float 1e-9)) "io" 1.0 (Cost_model.io_seconds cm io);
        Alcotest.(check (float 1e-9)) "total" 3.0 (Cost_model.total cm ~cpu:2.0 io));
    unit "default cost model charges 100us per page" (fun () ->
        let io = Io_stats.create () in
        Io_stats.record_scan io ~pages:10 ~tuples:1;
        Alcotest.(check (float 1e-9)) "1ms" 0.001
          (Cost_model.io_seconds Cost_model.default io));
    unit "table renders all cells" (fun () ->
        let t = Table.create [ "a"; "longer" ] in
        Table.add_row t [ "1"; "2" ];
        Table.add_row t [ "333"; "4" ];
        let s = Table.render t in
        List.iter
          (fun cell ->
            Alcotest.(check bool) (cell ^ " present") true (Astring_contains.contains s cell))
          [ "a"; "longer"; "1"; "2"; "333"; "4" ]);
    unit "table rejects ragged rows" (fun () ->
        let t = Table.create [ "a" ] in
        Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity")
          (fun () -> Table.add_row t [ "1"; "2" ]));
    unit "cell formatters" (fun () ->
        Alcotest.(check string) "fcell" "1.50" (Table.fcell 1.5);
        Alcotest.(check string) "speedup" "2.25x" (Table.speedup_cell 2.25));
  ]
