open Cfq_itembase
open Cfq_txdb
open Cfq_mining
open Cfq_data

let unit name f = Alcotest.test_case name `Quick f

let with_tmp f =
  let path = Filename.temp_file "cfq_test" ".dat" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let db_equal a b =
  Tx_db.size a = Tx_db.size b
  &&
  let ok = ref true in
  for i = 0 to Tx_db.size a - 1 do
    if not (Itemset.equal (Tx_db.get a i).Transaction.items (Tx_db.get b i).Transaction.items)
    then ok := false
  done;
  !ok

let suite =
  [
    unit "fimi read_string basics" (fun () ->
        let db = Fimi.read_string "1 2 3\n\n5 4\n7\n" in
        Alcotest.(check int) "3 txs" 3 (Tx_db.size db);
        Alcotest.(check bool) "sorted" true
          (Itemset.equal (Tx_db.get db 1).Transaction.items (Itemset.of_list [ 4; 5 ])));
    unit "fimi dedupes and handles tabs" (fun () ->
        let db = Fimi.read_string "1\t2 2  1\n" in
        Alcotest.(check int) "card" 2
          (Itemset.cardinal (Tx_db.get db 0).Transaction.items));
    unit "fimi rejects garbage" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Fimi.read_string "1 x 3\n" with
          | exception Fimi.Bad_format msg ->
              Astring_contains.contains msg "not an item id"
          | _ -> false);
        Alcotest.(check bool) "negative" true
          (match Fimi.read_string "-4\n" with
          | exception Fimi.Bad_format _ -> true
          | _ -> false));
    unit "fimi write/read round-trip" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 3; 7 ]; [ 2 ]; [ 1; 5 ] ] in
        with_tmp (fun path ->
            Fimi.write path db;
            let back = Fimi.read path in
            Alcotest.(check bool) "equal" true (db_equal db back)));
    Helpers.qtest ~count:60 "fimi round-trips any database" Helpers.gen_db
      Helpers.print_db (fun (_, db) ->
        with_tmp (fun path ->
            Fimi.write path db;
            db_equal db (Fimi.read path)));
    unit "fimi max_item" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 3 ]; [ 9; 1 ] ] in
        Alcotest.(check (option int)) "9" (Some 9) (Fimi.max_item db);
        Alcotest.(check (option int)) "empty" None
          (Fimi.max_item (Tx_db.create [||])));
    unit "item_csv read basics" (fun () ->
        let info =
          Item_csv.read_string "item,Price,Type:cat\n0,12.5,3\n2,99,1\n" ~universe_size:3
        in
        let price = Option.get (Item_info.find_attr info "Price") in
        let typ = Option.get (Item_info.find_attr info "Type") in
        Alcotest.(check bool) "type is categorical" true
          (typ.Attr.kind = Attr.Categorical);
        Alcotest.(check (float 1e-9)) "price 0" 12.5 (Item_info.value info price 0);
        Alcotest.(check (float 1e-9)) "missing defaults to 0" 0.
          (Item_info.value info price 1);
        Alcotest.(check (float 1e-9)) "price 2" 99. (Item_info.value info price 2));
    unit "item_csv rejects bad input" (fun () ->
        let bad data =
          match Item_csv.read_string data ~universe_size:2 with
          | exception Item_csv.Bad_format _ -> ()
          | _ -> Alcotest.fail ("expected Bad_format for " ^ data)
        in
        bad "";
        bad "item\n0\n";
        bad "item,Price\n5,1\n";
        bad "item,Price\n0,abc\n";
        bad "item,Price,Type\n0,1\n");
    unit "item_csv write/read round-trip" (fun () ->
        let info = Helpers.small_info 5 in
        with_tmp (fun path ->
            Item_csv.write path info;
            let back = Item_csv.read path ~universe_size:5 in
            List.iter
              (fun a ->
                let a' = Option.get (Item_info.find_attr back a.Attr.name) in
                Alcotest.(check bool) ("kind " ^ a.Attr.name) true
                  (a.Attr.kind = a'.Attr.kind);
                for i = 0 to 4 do
                  Alcotest.(check (float 1e-9)) "value" (Item_info.value info a i)
                    (Item_info.value back a' i)
                done)
              (Item_info.attrs info)));
    unit "result CSV exports" (fun () ->
        let f =
          Frequent.of_levels
            [
              [| { Frequent.set = Itemset.of_list [ 1 ]; support = 3 } |];
              [| { Frequent.set = Itemset.of_list [ 1; 4 ]; support = 2 } |];
            ]
        in
        with_tmp (fun path ->
            Result_csv.write_frequent path f;
            let content =
              In_channel.with_open_text path In_channel.input_all
            in
            Alcotest.(check bool) "header" true
              (Astring_contains.contains content "size,support,items");
            Alcotest.(check bool) "row" true
              (Astring_contains.contains content "2,2,1|4"));
        let e set support = { Frequent.set = Itemset.of_list set; support } in
        with_tmp (fun path ->
            Result_csv.write_pairs path [ (e [ 0 ] 4, e [ 1; 2 ] 3) ];
            let content = In_channel.with_open_text path In_channel.input_all in
            Alcotest.(check bool) "pair row" true
              (Astring_contains.contains content "0,4,1|2,3"));
        with_tmp (fun path ->
            let metric = Cfq_rules.Metric.compute ~n:10 ~n_s:4 ~n_t:3 ~n_st:2 in
            Result_csv.write_rules path
              [
                {
                  Cfq_rules.Rule.antecedent = Itemset.of_list [ 0 ];
                  consequent = Itemset.of_list [ 1 ];
                  metric;
                };
              ];
            let content = In_channel.with_open_text path In_channel.input_all in
            Alcotest.(check bool) "rule header" true
              (Astring_contains.contains content "confidence");
            Alcotest.(check bool) "rule row" true
              (Astring_contains.contains content "0,1,0.2,0.5")));
    unit "end-to-end: mine a query on data loaded from files" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        with_tmp (fun tx_path ->
            with_tmp (fun info_path ->
                Fimi.write tx_path db;
                Item_csv.write info_path (Helpers.small_info 3);
                let db' = Fimi.read tx_path in
                let n = 1 + Option.get (Fimi.max_item db') in
                let info = Item_csv.read info_path ~universe_size:n in
                let q =
                  Cfq_core.Parser.parse "{(S,T) | freq(S) >= 0.5 & freq(T) >= 0.5}"
                in
                let r = Cfq_core.Exec.run (Cfq_core.Exec.context db' info) q in
                Alcotest.(check bool) "some pairs" true
                  (r.Cfq_core.Exec.pair_stats.Cfq_core.Pairs.n_pairs > 0))));
  ]
