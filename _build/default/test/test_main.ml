let () =
  Alcotest.run "cfq"
    [
      ("itemset", Test_itemset.suite);
      ("itembase", Test_itembase.suite);
      ("bitvec", Test_bitvec.suite);
      ("taxonomy", Test_taxonomy.suite);
      ("txdb", Test_txdb.suite);
      ("quest", Test_quest.suite);
      ("constr", Test_constr.suite);
      ("mgf", Test_mgf.suite);
      ("classify2", Test_classify2.suite);
      ("reduce", Test_reduce.suite);
      ("paper_tables", Test_paper_tables.suite);
      ("induce", Test_induce.suite);
      ("jmax", Test_jmax.suite);
      ("mining", Test_mining.suite);
      ("vertical", Test_vertical.suite);
      ("partition", Test_partition.suite);
      ("alt_miners", Test_alt_miners.suite);
      ("incremental", Test_incremental.suite);
      ("ccc", Test_ccc.suite);
      ("dovetail", Test_dovetail.suite);
      ("parser", Test_parser.suite);
      ("optimizer", Test_optimizer.suite);
      ("pairs", Test_pairs.suite);
      ("exec", Test_exec.suite);
      ("report", Test_report.suite);
      ("rules", Test_rules.suite);
      ("strategies", Test_strategies.suite);
      ("data", Test_data.suite);
      ("integration", Test_integration.suite);
      ("validate", Test_validate.suite);
      ("advisor", Test_advisor.suite);
      ("rewrite", Test_rewrite.suite);
      ("shell", Test_shell.suite);
    ]
