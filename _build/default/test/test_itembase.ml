open Cfq_itembase

let unit name f = Alcotest.test_case name `Quick f

let info_fixture () =
  let info = Item_info.create ~universe_size:4 in
  Item_info.add_column info (Attr.make "Price" Attr.Numeric) [| 10.; 20.; 30.; 20. |];
  Item_info.add_column info (Attr.make "Type" Attr.Categorical) [| 0.; 1.; 1.; 2. |];
  info

let price = Attr.make "Price" Attr.Numeric
let typ = Attr.make "Type" Attr.Categorical

let suite =
  [
    unit "value_set algebra" (fun () ->
        let a = Value_set.of_list [ 1.; 2.; 3. ] in
        let b = Value_set.of_list [ 2.; 3.; 4. ] in
        Alcotest.(check int) "union" 4 (Value_set.cardinal (Value_set.union a b));
        Alcotest.(check int) "inter" 2 (Value_set.cardinal (Value_set.inter a b));
        Alcotest.(check int) "diff" 1 (Value_set.cardinal (Value_set.diff a b));
        Alcotest.(check bool) "subset" true
          (Value_set.subset (Value_set.of_list [ 2. ]) a);
        Alcotest.(check bool) "disjoint" false (Value_set.disjoint a b);
        Alcotest.(check (option (float 0.0))) "min" (Some 1.) (Value_set.min_value a);
        Alcotest.(check (option (float 0.0))) "max" (Some 3.) (Value_set.max_value a);
        Alcotest.(check (float 1e-9)) "sum" 6. (Value_set.sum a));
    unit "value_set dedupes" (fun () ->
        Alcotest.(check int) "card" 2
          (Value_set.cardinal (Value_set.of_list [ 1.; 1.; 2. ])));
    unit "item_info lookup and projection" (fun () ->
        let info = info_fixture () in
        Alcotest.(check (float 0.)) "price of 2" 30. (Item_info.value info price 2);
        let s = Itemset.of_list [ 1; 2; 3 ] in
        let types = Item_info.project info typ s in
        Alcotest.(check int) "distinct types" 2 (Value_set.cardinal types);
        Alcotest.(check int) "count_distinct" 2 (Item_info.count_distinct info typ s));
    unit "item_info aggregates are multiset aggregates" (fun () ->
        let info = info_fixture () in
        let s = Itemset.of_list [ 1; 3 ] in
        (* two items with the same price 20: sum counts both *)
        Alcotest.(check (float 1e-9)) "sum" 40. (Item_info.sum_of info price s);
        Alcotest.(check (option (float 1e-9))) "avg" (Some 20.)
          (Item_info.avg_of info price s);
        Alcotest.(check (option (float 1e-9))) "min" (Some 20.)
          (Item_info.min_of info price s);
        Alcotest.(check (option (float 1e-9))) "max" (Some 20.)
          (Item_info.max_of info price s));
    unit "item_info empty set aggregates" (fun () ->
        let info = info_fixture () in
        Alcotest.(check (option (float 0.))) "min empty" None
          (Item_info.min_of info price Itemset.empty);
        Alcotest.(check (float 0.)) "sum empty" 0.
          (Item_info.sum_of info price Itemset.empty));
    unit "self attribute" (fun () ->
        let info = info_fixture () in
        Alcotest.(check (float 0.)) "identity" 3. (Item_info.value info Attr.self 3);
        Alcotest.(check bool) "find Item" true
          (Item_info.find_attr info "Item" = Some Attr.self));
    unit "add_column validations" (fun () ->
        let info = info_fixture () in
        Alcotest.check_raises "size" (Invalid_argument
          "Item_info.add_column: column size mismatch") (fun () ->
            Item_info.add_column info (Attr.make "X" Attr.Numeric) [| 1. |]);
        Alcotest.check_raises "dup" (Invalid_argument
          "Item_info.add_column: duplicate attribute Price") (fun () ->
            Item_info.add_column info price [| 1.; 2.; 3.; 4. |]));
    unit "find_attr" (fun () ->
        let info = info_fixture () in
        Alcotest.(check bool) "price" true (Item_info.find_attr info "Price" <> None);
        Alcotest.(check bool) "missing" true (Item_info.find_attr info "Nope" = None);
        Alcotest.(check (list string)) "attrs" [ "Price"; "Type" ]
          (List.map (fun a -> a.Attr.name) (Item_info.attrs info)));
  ]
