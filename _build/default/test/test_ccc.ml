(* ccc-optimality (Definition 6, Theorem 4): with succinct constraints the
   CAP engine performs constraint checks only on single items, and counts
   exactly the candidates that are valid and have all their (knowably)
   frequent subsets. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining

let price = Helpers.price

let count_expected db ~n ~minsup ~valid_item =
  (* sets over valid items whose (k-1)-subsets are all frequent *)
  let frequent s = Helpers.support_of db s >= minsup in
  List.length
    (List.filter
       (fun s ->
         Itemset.for_all valid_item s
         &&
         let ok = ref true in
         if Itemset.cardinal s > 1 then
           Itemset.iter_delete_one s (fun sub -> if not (frequent sub) then ok := false);
         !ok)
       (Helpers.all_subsets n))

let suite =
  [
    Helpers.qtest ~count:100
      "universe-filter constraint: exactly N constraint checks (condition 2)"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 40.) in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let io = Io_stats.create () in
        let (_ : Frequent.t) = Cap.run state io in
        Counters.constraint_checks (Cap.counters state) = n);
    Helpers.qtest ~count:100
      "universe-filter constraint: counts exactly the valid candidates with \
       frequent subsets (condition 1)" Helpers.gen_db Helpers.print_db
      (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 40.) in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let io = Io_stats.create () in
        let (_ : Frequent.t) = Cap.run state io in
        let valid_item i = Item_info.value info price i <= 40. in
        Counters.support_counted (Cap.counters state)
        = count_expected db ~n ~minsup ~valid_item);
    Helpers.qtest ~count:100
      "witness constraint: checks stay within one pass over items per group"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 20.) in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let io = Io_stats.create () in
        let (_ : Frequent.t) = Cap.run state io in
        (* N universe checks at level 1 plus at most N witness-selection
           checks: still O(N), never per-candidate *)
        Counters.constraint_checks (Cap.counters state) <= 2 * n);
    Helpers.qtest ~count:100
      "witness constraint: no witness-free set is counted beyond level 1"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Min, price, Cmp.Le, 20.) in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let io = Io_stats.create () in
        let freq = Cap.run state io in
        Frequent.fold
          (fun acc e ->
            acc
            && (Itemset.cardinal e.Frequent.set <= 1
               || One_var.eval info c e.Frequent.set))
          true freq);
    Helpers.qtest ~count:60
      "anti-monotone non-succinct constraint: counted sets all satisfy it"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Sum, price, Cmp.Le, 90.) in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let io = Io_stats.create () in
        let freq = Cap.run state io in
        Frequent.fold (fun acc e -> acc && One_var.eval info c e.Frequent.set) true freq);
    Helpers.qtest ~count:60
      "apriori+ baseline violates condition 1 whenever invalid frequent sets exist"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        (* sanity for the paper's negative claim: the baseline counts
           everything, so it counts at least as much as CAP *)
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let c = One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 40.) in
        let io = Io_stats.create () in
        let plain = Apriori.mine db info io ~minsup () in
        let state = Cap.create db info ~minsup (Bundle.compile ~nonneg:true info [ c ]) in
        let (_ : Frequent.t) = Cap.run state io in
        Counters.support_counted (Cap.counters state)
        <= Counters.support_counted plain.Apriori.counters);
  ]
