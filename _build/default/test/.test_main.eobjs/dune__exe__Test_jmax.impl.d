test/test_jmax.ml: Alcotest Array Cfq_itembase Cfq_mining Cfq_txdb Float Frequent Helpers Item_info Itemset Jmax List Tx_db
