test/test_integration.ml: Advisor Alcotest Astring_contains Cfq_core Cfq_quest Cfq_txdb Exec Item_gen List Pairs Parser Plan Printf Quest_gen Splitmix
