test/test_alt_miners.ml: Alcotest Apriori Apriori_tid Cfq_itembase Cfq_mining Cfq_txdb Dhp Fp_growth Frequent Helpers Io_stats Itemset List Sampling Tx_db
