test/test_ccc.ml: Agg Apriori Bundle Cap Cfq_constr Cfq_itembase Cfq_mining Cfq_txdb Cmp Counters Frequent Helpers Io_stats Item_info Itemset List One_var Tx_db
