test/test_shell.ml: Alcotest Astring_contains Cfq_core Cfq_shell Exec Filename Fun Helpers In_channel List Shell Sys
