test/test_paper_tables.ml: Agg Alcotest Cfq_constr Cfq_itembase Cmp Helpers Induce Item_info Itemset List One_var Printf Reduce Two_var Value_set
