test/test_mgf.ml: Agg Alcotest Cfq_constr Cfq_itembase Cmp Helpers Itemset List Mgf One_var Option QCheck2 String
