test/test_incremental.ml: Alcotest Apriori Array Cfq_itembase Cfq_mining Cfq_txdb Counters Counting Frequent Helpers Incremental Io_stats Itemset List Printf QCheck2 Transaction Tx_db
