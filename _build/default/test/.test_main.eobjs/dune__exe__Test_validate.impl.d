test/test_validate.ml: Alcotest Astring_contains Cfq_constr Cfq_core Helpers List Parser Query Two_var Validate
