test/test_induce.ml: Agg Alcotest Cfq_constr Cfq_itembase Classify Cmp Helpers Induce Itemset QCheck2 Two_var
