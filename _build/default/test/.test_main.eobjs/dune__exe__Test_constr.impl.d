test/test_constr.ml: Agg Alcotest Cfq_constr Cfq_itembase Cmp Helpers Itemset List One_var Printf QCheck2 Sel Value_set
