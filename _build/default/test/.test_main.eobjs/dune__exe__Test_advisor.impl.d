test/test_advisor.ml: Advisor Alcotest Cfq_core Cfq_mining Cfq_txdb Exec Helpers List Pairs Parser Plan QCheck2 Query
