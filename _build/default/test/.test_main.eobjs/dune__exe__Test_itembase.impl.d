test/test_itembase.ml: Alcotest Attr Cfq_itembase Item_info Itemset List Value_set
