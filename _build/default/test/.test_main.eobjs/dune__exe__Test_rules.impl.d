test/test_rules.ml: Alcotest Apriori Cfq_constr Cfq_core Cfq_itembase Cfq_mining Cfq_rules Cfq_txdb Exec Float Frequent Helpers Itemset List Metric Pairs QCheck2 Query Rule
