test/test_dovetail.ml: Alcotest Attr Bundle Cap Cfq_constr Cfq_itembase Cfq_mining Cfq_txdb Dovetail Frequent Helpers Io_stats Itemset List One_var Tx_db Value_set
