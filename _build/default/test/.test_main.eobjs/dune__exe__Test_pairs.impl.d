test/test_pairs.ml: Agg Alcotest Array Cfq_constr Cfq_core Cfq_itembase Cfq_mining Cmp Frequent Helpers Itemset List Pairs Printf QCheck2 String Two_var
