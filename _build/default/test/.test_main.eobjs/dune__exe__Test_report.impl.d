test/test_report.ml: Alcotest Astring_contains Cfq_mining Cfq_report Cfq_txdb Cost_model Format Helpers Io_stats List Profile String Table
