test/test_vertical.ml: Alcotest Apriori Cfq_itembase Cfq_mining Cfq_txdb Frequent Helpers Io_stats Itemset QCheck2 Tx_db Vertical
