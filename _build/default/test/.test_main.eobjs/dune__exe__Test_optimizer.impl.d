test/test_optimizer.ml: Agg Alcotest Astring_contains Cfq_constr Cfq_core Cmp Format Helpers List Optimizer Parser Plan Two_var
