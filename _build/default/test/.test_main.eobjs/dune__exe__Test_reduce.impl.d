test/test_reduce.ml: Agg Alcotest Attr Cfq_constr Cfq_itembase Cfq_txdb Cmp Helpers Itemset List One_var QCheck2 Reduce Two_var Tx_db Value_set
