test/test_parser.ml: Agg Alcotest Cfq_constr Cfq_core Cfq_itembase Cmp Helpers List One_var Parser QCheck2 Query Two_var
