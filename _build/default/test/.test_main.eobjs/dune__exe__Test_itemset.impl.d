test/test_itemset.ml: Alcotest Array Cfq_itembase Cfq_mining Fun Helpers Int Itemset List QCheck2 Set
