test/test_exec.ml: Alcotest Array Astring_contains Cfq_core Cfq_itembase Cfq_mining Exec Explain Helpers Item_info Itemset List Pairs Parser Plan QCheck2 Query
