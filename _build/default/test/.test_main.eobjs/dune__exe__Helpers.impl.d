test/helpers.ml: Agg Array Buffer Cfq_constr Cfq_core Cfq_itembase Cfq_quest Cfq_txdb Cmp Io_stats Item_info Itemset List One_var Printf QCheck2 QCheck_alcotest Transaction Two_var Tx_db Value_set
