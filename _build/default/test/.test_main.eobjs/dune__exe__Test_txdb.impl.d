test/test_txdb.ml: Alcotest Cfq_itembase Cfq_txdb Helpers Io_stats Itemset Page_model Transaction Tx_db
