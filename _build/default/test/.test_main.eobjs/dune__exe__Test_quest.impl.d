test/test_quest.ml: Alcotest Array Cfq_itembase Cfq_quest Cfq_txdb Dist Float Fun Io_stats Item_gen Itemset Planted Printf Quest_gen Splitmix Tx_db Value_set
