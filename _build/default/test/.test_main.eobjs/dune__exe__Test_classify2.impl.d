test/test_classify2.ml: Agg Alcotest Cfq_constr Cfq_itembase Cfq_txdb Classify Cmp Helpers Item_info Itemset List QCheck2 Two_var Tx_db
