test/test_strategies.ml: Alcotest Cfq_constr Cfq_core Cfq_itembase Cfq_mining Cfq_txdb Counters Exec Frequent Full_mat Helpers Itemset List Pairs Parser Plan QCheck2 Query
