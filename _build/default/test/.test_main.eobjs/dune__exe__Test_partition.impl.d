test/test_partition.ml: Alcotest Apriori Cfq_itembase Cfq_mining Cfq_txdb Frequent Helpers Io_stats Itemset List Partition Tx_db
