test/test_rewrite.ml: Agg Alcotest Astring_contains Cfq_constr Cfq_core Cfq_itembase Cfq_txdb Cmp Exec Helpers Itemset List One_var Pairs Parser QCheck2 Query Rewrite String Two_var Value_set
