test/test_bitvec.ml: Alcotest Bitvec Cfq_itembase Helpers Itemset List QCheck2
