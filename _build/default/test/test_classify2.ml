open Cfq_itembase
open Cfq_constr
open Cfq_txdb

let unit name f = Alcotest.test_case name `Quick f

let suite =
  [
    unit "Figure 1: anti-monotonicity and quasi-succinctness" (fun () ->
        List.iter
          (fun (c, am, qs) ->
            Alcotest.(check bool)
              (Two_var.to_string c ^ " anti-monotone")
              am (Classify.anti_monotone c);
            Alcotest.(check bool)
              (Two_var.to_string c ^ " quasi-succinct")
              qs (Classify.quasi_succinct c))
          Two_var.figure1_rows);
    unit "mirror of max<=min is anti-monotone" (fun () ->
        let a = Helpers.price in
        Alcotest.(check bool) "min>=max" true
          (Classify.anti_monotone (Two_var.Agg2 (Agg.Min, a, Cmp.Ge, Agg.Max, a)));
        Alcotest.(check bool) "swap preserves" true
          (Classify.anti_monotone
             (Two_var.swap (Two_var.Agg2 (Agg.Max, a, Cmp.Le, Agg.Min, a)))));
    unit "swap exchanges variable roles" (fun () ->
        let info = Helpers.small_info 8 in
        let s = Itemset.of_list [ 0; 1 ] in
        let t = Itemset.of_list [ 2; 3 ] in
        List.iter
          (fun (c, _, _) ->
            Alcotest.(check bool) (Two_var.to_string c)
              (Two_var.eval ~s_info:info ~t_info:info c s t)
              (Two_var.eval ~s_info:info ~t_info:info (Two_var.swap c) t s))
          Two_var.figure1_rows);
    (* Empirical soundness of the anti-monotone pruning rule: if S0 violates
       C against every frequent singleton, no superset of S0 is a valid
       S-set (Definition 4 with j = 1).  Checked for every constraint the
       classifier calls anti-monotone w.r.t. S. *)
    Helpers.qtest ~count:100 "anti-monotone 2-var pruning is sound"
      (QCheck2.Gen.pair Helpers.gen_two_var Helpers.gen_db)
      (fun (c, db) -> Two_var.to_string c ^ " on " ^ Helpers.print_db db)
      (fun (c, (n, db)) ->
        (not (Classify.anti_monotone_s c))
        ||
        let info = Helpers.small_info n in
        let minsup = max 1 (Tx_db.size db / 5) in
        let freq = Helpers.brute_frequent db ~n ~minsup in
        let freq_singletons = List.filter (fun t -> Itemset.cardinal t = 1) freq in
        let valid_s =
          Helpers.brute_valid_s db ~n ~minsup ~s_info:info ~t_info:info c
        in
        List.for_all
          (fun s0 ->
            let fails_all_singletons =
              List.for_all
                (fun t -> not (Two_var.eval ~s_info:info ~t_info:info c s0 t))
                freq_singletons
            in
            (not fails_all_singletons)
            || freq_singletons = []
            || List.for_all
                 (fun s -> not (Itemset.subset s0 s))
                 valid_s)
          (Helpers.all_subsets n));
    unit "non-anti-monotone rows admit counterexamples" (fun () ->
        (* min(S.A) <= min(T.B): the Theorem 1 proof-sketch scenario.
           Items: prices from small_info; build a db where a small S fails
           against all frequent T but a superset succeeds. *)
        let info =
          let i = Item_info.create ~universe_size:3 in
          Item_info.add_column i Helpers.price [| 50.; 5.; 10. |];
          i
        in
        let db = Helpers.db_of_lists [ [ 2 ]; [ 2 ]; [ 0; 1 ] ] in
        let c = Two_var.Agg2 (Agg.Min, Helpers.price, Cmp.Le, Agg.Min, Helpers.price) in
        let minsup = 2 in
        let valid_s = Helpers.brute_valid_s db ~n:3 ~minsup ~s_info:info ~t_info:info c in
        let s0 = Itemset.of_list [ 0 ] in
        let s1 = Itemset.of_list [ 0; 1 ] in
        (* {0} (min 50) fails against the only frequent T {2} (min 10), but
           {0,1} (min 5) succeeds: violation is not inherited upward *)
        Alcotest.(check bool) "s0 invalid" false (List.exists (Itemset.equal s0) valid_s);
        Alcotest.(check bool) "superset valid" true
          (List.exists (Itemset.equal s1) valid_s);
        Alcotest.(check bool) "classified not anti-monotone" false
          (Classify.anti_monotone c));
  ]
