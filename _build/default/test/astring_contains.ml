(* tiny substring search used by tests (no external string library) *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let found = ref false in
    for i = 0 to nh - nn do
      if (not !found) && String.sub haystack i nn = needle then found := true
    done;
    !found
  end
