open Cfq_itembase
open Cfq_constr
open Cfq_mining
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f
let info = Helpers.small_info 6

let entry l = { Frequent.set = Itemset.of_list l; support = 1 }

(* reference: evaluate the conjunction on the full product *)
let brute_pairs two_var vs vt =
  let out = ref [] in
  Array.iter
    (fun es ->
      Array.iter
        (fun et ->
          if
            List.for_all
              (fun c -> Two_var.eval ~s_info:info ~t_info:info c es.Frequent.set et.Frequent.set)
              two_var
          then out := (es.Frequent.set, et.Frequent.set) :: !out)
        vt)
    vs;
  Helpers.sorted_pairs !out

let collected_pairs two_var vs vt =
  let got = ref [] in
  let stats =
    Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt ~two_var
      ~on_pair:(fun a b -> got := (a.Frequent.set, b.Frequent.set) :: !got)
      ()
  in
  (stats, Helpers.sorted_pairs !got)

let gen_entries =
  QCheck2.Gen.(
    map
      (fun sets ->
        Array.of_list
          (List.map (fun s -> { Frequent.set = s; support = 1 }) (List.sort_uniq Itemset.compare sets)))
      (list_size (int_range 0 10) (Helpers.gen_itemset 6)))

let gen_case = QCheck2.Gen.pair Helpers.gen_two_var (QCheck2.Gen.pair gen_entries gen_entries)

let print_case (c, (vs, vt)) =
  Printf.sprintf "%s |S|=%d |T|=%d" (Two_var.to_string c) (Array.length vs)
    (Array.length vt)

let suite =
  [
    unit "pairs with no 2-var constraint form the full product" (fun () ->
        let vs = [| entry [ 0 ]; entry [ 1 ] |] in
        let vt = [| entry [ 2 ]; entry [ 3 ]; entry [ 4 ] |] in
        let st = Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt ~two_var:[] () in
        Alcotest.(check int) "pairs" 6 st.Pairs.n_pairs;
        Alcotest.(check int) "paired s" 2 st.Pairs.n_paired_s;
        Alcotest.(check int) "paired t" 3 st.Pairs.n_paired_t;
        Alcotest.(check int) "no checks" 0 st.Pairs.checks;
        Alcotest.(check string) "nested" "nested-loop"
          (Pairs.join_method_name st.Pairs.join));
    unit "a single aggregate comparison becomes a sort join with zero checks"
      (fun () ->
        (* prices: 10 40 70 30 60 20 *)
        let vs = [| entry [ 0 ]; entry [ 2 ] |] in
        let vt = [| entry [ 1 ]; entry [ 5 ] |] in
        let c = Two_var.Agg2 (Agg.Max, Helpers.price, Cmp.Le, Agg.Min, Helpers.price) in
        let st =
          Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt ~two_var:[ c ] ()
        in
        Alcotest.(check int) "pairs" 2 st.Pairs.n_pairs;
        Alcotest.(check int) "paired s" 1 st.Pairs.n_paired_s;
        Alcotest.(check int) "paired t" 2 st.Pairs.n_paired_t;
        Alcotest.(check int) "no residual checks" 0 st.Pairs.checks;
        Alcotest.(check string) "sort join" "sort-join"
          (Pairs.join_method_name st.Pairs.join));
    unit "set equality becomes a hash join" (fun () ->
        (* types: i mod 4 *)
        let vs = [| entry [ 0 ]; entry [ 1 ] |] in
        let vt = [| entry [ 4 ]; entry [ 5 ]; entry [ 2 ] |] in
        let c = Two_var.Set2 (Helpers.typ, Two_var.Set_eq, Helpers.typ) in
        let st =
          Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt ~two_var:[ c ] ()
        in
        (* type({0}) = {0} matches type({4}) = {0}; type({1}) = {1} matches {5} *)
        Alcotest.(check int) "pairs" 2 st.Pairs.n_pairs;
        Alcotest.(check string) "hash join" "hash-join"
          (Pairs.join_method_name st.Pairs.join));
    unit "residual constraints are verified per candidate pair" (fun () ->
        let vs = [| entry [ 0 ] |] in
        let vt = [| entry [ 1 ]; entry [ 5 ] |] in
        let c1 = Two_var.Agg2 (Agg.Max, Helpers.price, Cmp.Le, Agg.Min, Helpers.price) in
        let c2 = Two_var.Set2 (Helpers.typ, Two_var.Disjoint, Helpers.typ) in
        let st =
          Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt
            ~two_var:[ c1; c2 ] ()
        in
        (* driver keeps both T-sets; residual disjointness check runs twice *)
        Alcotest.(check int) "residual checks" 2 st.Pairs.checks;
        Alcotest.(check int) "pairs" 2 st.Pairs.n_pairs);
    unit "on_pair callback fires per pair" (fun () ->
        let vs = [| entry [ 0 ] |] in
        let vt = [| entry [ 1 ] |] in
        let got = ref [] in
        let _ =
          Pairs.form ~s_info:info ~t_info:info ~valid_s:vs ~valid_t:vt ~two_var:[]
            ~on_pair:(fun a b -> got := (a.Frequent.set, b.Frequent.set) :: !got)
            ()
        in
        Alcotest.(check int) "one" 1 (List.length !got));
    unit "empty sides give zero pairs" (fun () ->
        let st =
          Pairs.form ~s_info:info ~t_info:info ~valid_s:[||] ~valid_t:[| entry [ 0 ] |]
            ~two_var:[] ()
        in
        Alcotest.(check int) "zero" 0 st.Pairs.n_pairs);
    Helpers.qtest ~count:400 "every join method agrees with the nested-loop semantics"
      gen_case print_case (fun (c, (vs, vt)) ->
        let stats, got = collected_pairs [ c ] vs vt in
        let expected = brute_pairs [ c ] vs vt in
        stats.Pairs.n_pairs = List.length expected
        && List.length got = List.length expected
        && List.for_all2
             (fun (a1, b1) (a2, b2) -> Itemset.equal a1 a2 && Itemset.equal b1 b2)
             got expected);
    Helpers.qtest ~count:200 "conjunctions agree with the nested-loop semantics"
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 2 3) Helpers.gen_two_var)
         (QCheck2.Gen.pair gen_entries gen_entries))
      (fun (cs, (vs, vt)) ->
        Printf.sprintf "%s |S|=%d |T|=%d"
          (String.concat " & " (List.map Two_var.to_string cs))
          (Array.length vs) (Array.length vt))
      (fun (cs, (vs, vt)) ->
        let stats, _ = collected_pairs cs vs vt in
        stats.Pairs.n_pairs = List.length (brute_pairs cs vs vt));
    Helpers.qtest ~count:200 "sort join on strict and Ne comparisons"
      (QCheck2.Gen.pair
         QCheck2.Gen.(
           let* op = oneofl [ Cmp.Lt; Cmp.Gt; Cmp.Ne; Cmp.Eq ] in
           let* agg1 = Helpers.gen_minmax in
           let* agg2 = Helpers.gen_minmax in
           return (Two_var.Agg2 (agg1, Helpers.price, op, agg2, Helpers.price)))
         (QCheck2.Gen.pair gen_entries gen_entries))
      print_case
      (fun (c, (vs, vt)) ->
        let stats, _ = collected_pairs [ c ] vs vt in
        stats.Pairs.n_pairs = List.length (brute_pairs [ c ] vs vt));
  ]
