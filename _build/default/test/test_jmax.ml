open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let entries_of_level db ~n ~minsup ~k =
  Helpers.brute_frequent db ~n ~minsup
  |> List.filter (fun s -> Itemset.cardinal s = k)
  |> List.map (fun s -> { Frequent.set = s; support = Helpers.support_of db s })
  |> Array.of_list

let largest_frequent db ~n ~minsup =
  List.fold_left
    (fun acc s -> max acc (Itemset.cardinal s))
    0
    (Helpers.brute_frequent db ~n ~minsup)

let suite =
  [
    unit "binomial coefficients" (fun () ->
        Alcotest.(check int) "C(5,2)" 10 (Jmax.binom 5 2);
        Alcotest.(check int) "C(6,3)" 20 (Jmax.binom 6 3);
        Alcotest.(check int) "C(7,0)" 1 (Jmax.binom 7 0);
        Alcotest.(check int) "C(7,7)" 1 (Jmax.binom 7 7);
        Alcotest.(check int) "C(3,5)" 0 (Jmax.binom 3 5);
        Alcotest.(check int) "C(50,25) saturates sanely" (Jmax.binom 50 25)
          (Jmax.binom 50 25);
        Alcotest.(check bool) "C(200,100) capped positive" true (Jmax.binom 200 100 > 0));
    unit "paper's numerical example" (fun () ->
        (* 17 frequent 4-sets containing t1: no frequent 7-set since
           C(6,3) = 20 > 17, so J = 2 (size at most 6) *)
        let j = ref 0 in
        while Jmax.binom (4 + !j) 3 <= 17 do
          incr j
        done;
        Alcotest.(check int) "J1 = 2" 2 !j);
    Helpers.qtest ~count:100 "k + Jmax bounds the largest frequent set" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 6) in
        let biggest = largest_frequent db ~n ~minsup in
        List.for_all
          (fun k ->
            let level = entries_of_level db ~n ~minsup ~k in
            Array.length level = 0 || k + Jmax.jmax ~k level >= biggest)
          (List.filter (fun k -> k <= biggest) [ 2; 3 ]));
    Helpers.qtest ~count:100 "per-element J bounds sets containing the element"
      Helpers.gen_db Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 6) in
        let freq = Helpers.brute_frequent db ~n ~minsup in
        let k = 2 in
        let level = entries_of_level db ~n ~minsup ~k in
        Array.length level = 0
        || List.for_all
             (fun (i, j_i) ->
               List.for_all
                 (fun s -> (not (Itemset.mem i s)) || Itemset.cardinal s <= k + j_i)
                 freq)
             (Jmax.per_element_j ~k level));
    Helpers.qtest ~count:100 "V^k bounds the sum of every frequent set" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 6) in
        let info = Helpers.small_info n in
        let freq = Helpers.brute_frequent db ~n ~minsup in
        let sb = Jmax.Sum_bound.create info Helpers.price in
        let max_k = largest_frequent db ~n ~minsup in
        let sound = ref true in
        for k = 1 to max_k + 1 do
          Jmax.Sum_bound.observe_level sb ~k (entries_of_level db ~n ~minsup ~k);
          let b = Jmax.Sum_bound.bound sb in
          List.iter
            (fun s ->
              if Item_info.sum_of info Helpers.price s > b +. 1e-9 then sound := false)
            freq
        done;
        !sound);
    Helpers.qtest ~count:60 "V^k tightens monotonically (Lemma 7)" Helpers.gen_db
      Helpers.print_db (fun (n, db) ->
        let minsup = max 1 (Tx_db.size db / 6) in
        let info = Helpers.small_info n in
        let sb = Jmax.Sum_bound.create info Helpers.price in
        let max_k = largest_frequent db ~n ~minsup in
        let prev = ref infinity in
        let ok = ref true in
        for k = 1 to max_k do
          Jmax.Sum_bound.observe_level sb ~k (entries_of_level db ~n ~minsup ~k);
          let b = Jmax.Sum_bound.bound sb in
          if b > !prev +. 1e-9 then ok := false;
          prev := b
        done;
        !ok);
    unit "exhausted lattice collapses the bound to the observed max" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 2 ] ] in
        let info = Helpers.small_info 3 in
        let sb = Jmax.Sum_bound.create info Helpers.price in
        let minsup = 2 in
        for k = 1 to 3 do
          Jmax.Sum_bound.observe_level sb ~k (entries_of_level db ~n:3 ~minsup ~k)
        done;
        (* level 3 empty: bound = exact max over frequent sets *)
        Alcotest.(check (float 1e-9)) "exact"
          (Jmax.Sum_bound.observed_max sb)
          (Jmax.Sum_bound.bound sb));
    unit "bound is infinite before any level" (fun () ->
        let info = Helpers.small_info 3 in
        let sb = Jmax.Sum_bound.create info Helpers.price in
        Alcotest.(check bool) "infinite" true
          (not (Float.is_finite (Jmax.Sum_bound.bound sb))));
  ]
