open Cfq_core

let unit name f = Alcotest.test_case name `Quick f

(* two clusters: S items {0,1,2} frequent together, T items {3,4} *)
let db () =
  Helpers.db_of_lists
    [
      [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 2 ];
      [ 3; 4 ]; [ 3; 4 ]; [ 3 ]; [ 4 ]; [ 5 ];
    ]

let ctx () = Exec.context (db ()) (Helpers.small_info 6)

let suite =
  [
    unit "unconstrained queries get the shared baseline lattice" (fun () ->
        let e = Advisor.advise (ctx ()) (Parser.parse "freq(S) >= 0.2 & freq(T) >= 0.2") in
        Alcotest.(check string) "apriori+" "apriori+" (Plan.strategy_name e.Advisor.strategy));
    unit "constrained queries get the optimizer" (fun () ->
        let e =
          Advisor.advise (ctx ())
            (Parser.parse
               "freq(S) >= 0.2 & freq(T) >= 0.2 & S.Price <= 10 & T.Price <= 40 & S.Type = T.Type")
        in
        Alcotest.(check string) "optimized" "optimized"
          (Plan.strategy_name e.Advisor.strategy));
    unit "sum constraint with a small bounding side goes sequential" (fun () ->
        (* T restricted to two items, S unrestricted: completing T first is cheap *)
        let e =
          Advisor.advise (ctx ())
            (Parser.parse
               "freq(S) >= 0.2 & freq(T) >= 0.2 & T.Item >= 3 & sum(S.Price) <= sum(T.Price)")
        in
        Alcotest.(check string) "sequential" "sequential-t-first"
          (Plan.strategy_name e.Advisor.strategy));
    unit "probe matches the actual level-1 profile" (fun () ->
        let q = Parser.parse "freq(S) >= 0.2 & freq(T) >= 0.2 & S.Price <= 40" in
        let e = Advisor.advise (ctx ()) q in
        let r = Exec.run ~strategy:Plan.Optimized (ctx ()) q in
        let l1_frequent rows =
          match
            List.find_opt (fun row -> row.Cfq_mining.Level_stats.level = 1) rows
          with
          | Some row -> row.Cfq_mining.Level_stats.frequent
          | None -> 0
        in
        Alcotest.(check int) "S L1" (l1_frequent r.Exec.s.Exec.levels) e.Advisor.s_l1;
        Alcotest.(check int) "T L1" (l1_frequent r.Exec.t.Exec.levels) e.Advisor.t_l1);
    unit "advice costs exactly one probe scan" (fun () ->
        let io = Cfq_txdb.Io_stats.create () in
        let _ = Advisor.advise ~io (ctx ()) (Parser.parse "freq(S) >= 0.2") in
        Alcotest.(check int) "one scan" 1 (Cfq_txdb.Io_stats.scans io));
    Helpers.qtest ~count:60 "the recommended strategy computes the correct answer"
      (QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db)
      (fun (q, db) -> Query.to_string q ^ " on " ^ Helpers.print_db db)
      (fun (q, (n, db)) ->
        let info = Helpers.small_info n in
        let ctx = Exec.context db info in
        let e = Advisor.advise ctx q in
        let r = Exec.run ~strategy:e.Advisor.strategy ctx q in
        let brute = Helpers.brute_answer db ~n ~s_info:info ~t_info:info q in
        r.Exec.pair_stats.Pairs.n_pairs = List.length brute);
  ]
